"""Static analysis for the reproduction: lint configs before they lie.

The paper's Observations are static checks in disguise — register
pressure capping occupancy (Observation 2), coalescing only paying off
when bandwidth-bound (Observation 1), FP16 storage being safe only under
``FP16_MAX`` (Solution 4).  This package codifies them:

* :mod:`~repro.analysis.diagnostics` — the shared finding/rule framework
  with text and JSON renderers;
* :mod:`~repro.analysis.kernel_lint` — ``KL001``-``KL008``: a
  :class:`~repro.gpusim.kernel.KernelSpec` vs
  :class:`~repro.gpusim.device.DeviceSpec` linter;
* :mod:`~repro.analysis.precision_lint` — ``PL001``-``PL004``: FP16
  overflow / accumulate-vs-store / CG-truncation analysis;
* :mod:`~repro.analysis.ast_lint` — ``AL001``-``AL005``: repo-convention
  AST lint run over ``src/repro`` itself (``repro analyze --self``);
* :mod:`~repro.analysis.dataflow` — ``DF001``-``DF005`` /
  ``RC001``-``RC004``: interprocedural precision-flow and
  buffer-provenance analysis over the hot-path modules
  (``repro analyze --dataflow``), paired with the runtime
  :class:`~repro.runtime.sanitizer.ArenaSanitizer` witness;
* :mod:`~repro.analysis.baseline` — suppression baselines so
  ``--strict`` gates on new findings only;
* :mod:`~repro.analysis.runner` — workload-level glue used by the CLI
  and the tuner.

Rule IDs, severities and the paper reference behind each rule are
catalogued in ``docs/static_analysis.md``.
"""

# Import order matters: core.tuning imports kernel_lint back from this
# package, so the cycle-free modules (diagnostics, kernel_lint, ast_lint)
# must initialize before the ones that pull in repro.core.
from .diagnostics import (
    RULE_REGISTRY,
    Diagnostic,
    RuleInfo,
    Severity,
    has_errors,
    max_severity,
    register_rule,
    render_json,
    render_text,
    rule_info,
)
from .kernel_lint import lint_kernel_spec, lint_streaming_l1_request
from .ast_lint import DEFAULT_IGNORES, lint_file, lint_source, lint_tree
from .baseline import (
    DEFAULT_BASELINE_NAME,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from .dataflow import (
    DEFAULT_DATAFLOW_PATHS,
    analyze_dataflow,
    analyze_sources,
    build_program,
)
from .precision_lint import (
    AUStats,
    lint_precision,
    lint_solver_spec,
    sample_au_stats,
)
from .runner import analyze_workload, sample_workload_stats

__all__ = [
    "AUStats",
    "DEFAULT_BASELINE_NAME",
    "DEFAULT_DATAFLOW_PATHS",
    "DEFAULT_IGNORES",
    "Diagnostic",
    "RULE_REGISTRY",
    "RuleInfo",
    "Severity",
    "analyze_dataflow",
    "analyze_sources",
    "analyze_workload",
    "apply_baseline",
    "build_program",
    "has_errors",
    "load_baseline",
    "lint_file",
    "lint_kernel_spec",
    "lint_precision",
    "lint_solver_spec",
    "lint_source",
    "lint_streaming_l1_request",
    "lint_tree",
    "max_severity",
    "register_rule",
    "render_json",
    "render_text",
    "rule_info",
    "sample_au_stats",
    "sample_workload_stats",
    "write_baseline",
]
