"""Workload-level analysis entry points.

Glue between the linters and the rest of the package: build the kernel
specs a training run would launch for a (device, workload shape, config)
triple, run every applicable rule, and return the combined findings.
This is what the ``repro analyze`` CLI and the tuner hooks call.
"""

from __future__ import annotations

import numpy as np

from ..core.config import ALSConfig, SolverKind
from ..core.hermitian import hermitian_rows
from ..core.kernels import (
    bias_spec,
    cg_iteration_spec,
    hermitian_register_demand,
    hermitian_spec,
)
from ..data.datasets import WorkloadShape
from ..data.sparse import RatingMatrix
from ..gpusim.device import DeviceSpec
from .diagnostics import Diagnostic
from .kernel_lint import lint_kernel_spec, lint_streaming_l1_request
from .precision_lint import (
    AUStats,
    lint_precision,
    lint_solver_spec,
    sample_au_stats,
)

__all__ = ["analyze_workload", "sample_workload_stats"]


def analyze_workload(
    device: DeviceSpec,
    shape: WorkloadShape,
    config: ALSConfig,
    *,
    threads_per_block: int = 64,
    use_l1: bool = False,
    stats: AUStats | None = None,
) -> list[Diagnostic]:
    """Lint every kernel an ALS epoch would launch, plus the precision flow.

    Covers both update directions of ``get_hermitian`` (user- and
    item-side grids differ, so tail-wave findings can too), ``get_bias``,
    and — for the CG solver — one batched iteration per side.
    """
    diags: list[Diagnostic] = []

    demand = hermitian_register_demand(
        shape.f, config.tile, threads_per_block=threads_per_block
    )
    for side_shape in (shape, shape.transpose()):
        herm = hermitian_spec(
            device,
            side_shape,
            config,
            threads_per_block=threads_per_block,
        )
        diags.extend(
            lint_kernel_spec(device, herm, requested_registers=demand)
        )
    diags.extend(lint_kernel_spec(device, bias_spec(device, shape)))

    if config.solver is SolverKind.CG:
        for batch in (shape.m, shape.n):
            cg = cg_iteration_spec(
                device, batch, shape.f, config.precision, use_l1=use_l1
            )
            diags.extend(lint_kernel_spec(device, cg))
            diags.extend(lint_solver_spec(device, cg))
            if use_l1:
                diags.extend(
                    lint_streaming_l1_request(
                        device,
                        kernel=f"{cg.name}(batch={batch})",
                        working_set_bytes=float(batch)
                        * shape.f
                        * shape.f
                        * config.precision.itemsize,
                    )
                )

    diags.extend(lint_precision(config, device=device, stats=stats))
    return _dedupe(diags)


def sample_workload_stats(
    train: RatingMatrix,
    config: ALSConfig,
    *,
    max_rows: int = 256,
) -> AUStats:
    """Sample real ``A_u`` statistics from a rating matrix.

    Forms the Hermitian systems for the first ``max_rows`` rows against a
    randomly initialized θ — the same distribution the first ALS half-step
    sees, which is when FP16 overflow risk is decided.
    """
    rng = np.random.default_rng(config.seed)
    theta = rng.normal(0.0, config.init_scale, size=(train.n, config.f)).astype(
        np.float32
    )
    rows = slice(0, min(max_rows, train.m))
    A, _ = hermitian_rows(train, theta, config.lam, rows=rows)
    return sample_au_stats(A)


def _dedupe(diags: list[Diagnostic]) -> list[Diagnostic]:
    """Drop exact repeats (the two hermitian sides often agree)."""
    seen: set[tuple] = set()
    out: list[Diagnostic] = []
    for d in diags:
        key = (d.rule_id, d.severity, d.subject, d.message)
        if key in seen:
            continue
        seen.add(key)
        out.append(d)
    return out
