"""Structured diagnostics shared by all the linters in this package.

A :class:`Diagnostic` is one finding: a registered rule ID, a severity,
the subject it was raised against (a kernel name, a config, a
``file:line``), a human message and an optional fix hint.  Rules are
declared once in a module-level registry so renderers and docs can map an
ID back to its title and the paper observation/figure it encodes.

Renderers are deliberately boring: ``render_text`` for terminals,
``render_json`` for CI and tooling.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field

__all__ = [
    "Severity",
    "RuleInfo",
    "Diagnostic",
    "RULE_REGISTRY",
    "register_rule",
    "rule_info",
    "max_severity",
    "has_errors",
    "render_text",
    "render_json",
]


class Severity(str, enum.Enum):
    """Finding severity, ordered ``INFO < WARNING < ERROR``."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]

    def __lt__(self, other: "Severity") -> bool:  # type: ignore[override]
        return self.rank < other.rank

    def __le__(self, other: "Severity") -> bool:  # type: ignore[override]
        return self.rank <= other.rank

    def __gt__(self, other: "Severity") -> bool:  # type: ignore[override]
        return self.rank > other.rank

    def __ge__(self, other: "Severity") -> bool:  # type: ignore[override]
        return self.rank >= other.rank


_SEVERITY_RANK = {Severity.INFO: 0, Severity.WARNING: 1, Severity.ERROR: 2}


@dataclass(frozen=True)
class RuleInfo:
    """Registry entry describing one lint rule."""

    rule_id: str
    title: str
    paper_ref: str  # observation / figure / section the rule encodes

    def __post_init__(self) -> None:
        if not self.rule_id:
            raise ValueError("rule_id must be non-empty")
        if not self.title:
            raise ValueError("title must be non-empty")


#: All known rules, keyed by rule ID.  Populated at import time by the
#: lint modules via :func:`register_rule`.
RULE_REGISTRY: dict[str, RuleInfo] = {}


def register_rule(rule_id: str, title: str, paper_ref: str = "") -> str:
    """Register a rule and return its ID (so modules can do
    ``KL001 = register_rule("KL001", ...)``)."""
    info = RuleInfo(rule_id=rule_id, title=title, paper_ref=paper_ref)
    existing = RULE_REGISTRY.get(rule_id)
    if existing is not None and existing != info:
        raise ValueError(f"rule {rule_id} already registered with different info")
    RULE_REGISTRY[rule_id] = info
    return rule_id


def rule_info(rule_id: str) -> RuleInfo:
    """Look up a registered rule; raises :class:`KeyError` if unknown."""
    return RULE_REGISTRY[rule_id]


@dataclass(frozen=True)
class Diagnostic:
    """One finding raised by a linter."""

    rule_id: str
    severity: Severity
    subject: str  # what was linted: kernel name, config, file:line
    message: str
    hint: str = ""
    data: tuple[tuple[str, float], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.rule_id not in RULE_REGISTRY:
            raise ValueError(f"diagnostic references unregistered rule {self.rule_id!r}")
        if not self.message:
            raise ValueError("message must be non-empty")

    @property
    def title(self) -> str:
        return RULE_REGISTRY[self.rule_id].title

    def as_dict(self) -> dict:
        d = {
            "rule": self.rule_id,
            "title": self.title,
            "severity": self.severity.value,
            "subject": self.subject,
            "message": self.message,
        }
        if self.hint:
            d["hint"] = self.hint
        if self.data:
            d["data"] = dict(self.data)
        ref = RULE_REGISTRY[self.rule_id].paper_ref
        if ref:
            d["paper_ref"] = ref
        return d


def max_severity(diagnostics: list[Diagnostic]) -> Severity | None:
    """Highest severity present, or None for an empty list."""
    if not diagnostics:
        return None
    return max((d.severity for d in diagnostics), key=lambda s: s.rank)


def has_errors(diagnostics: list[Diagnostic]) -> bool:
    return any(d.severity is Severity.ERROR for d in diagnostics)


def _subject_key(subject: str) -> tuple[str, int]:
    """Split a ``path:line`` subject into sortable (path, line).

    Subjects without a numeric line component (kernel names, configs)
    sort by their full text with line 0, so mixed reports stay stable.
    """
    path, sep, line = subject.rpartition(":")
    if sep and line.isdigit():
        return path, int(line)
    return subject, 0


def _sorted(diagnostics: list[Diagnostic]) -> list[Diagnostic]:
    """Dedupe identical findings, then order by (path, line, rule id).

    The positional ordering (severity only breaks ties) keeps JSON
    reports byte-stable across runs and scan orders, so CI artifacts
    diff cleanly.  Diagnostics are frozen/hashable; dict.fromkeys
    dedupes while preserving first-seen order for equal keys.
    """
    unique = list(dict.fromkeys(diagnostics))
    return sorted(
        unique,
        key=lambda d: (
            *_subject_key(d.subject),
            d.rule_id,
            -d.severity.rank,
            d.message,
        ),
    )


def render_text(diagnostics: list[Diagnostic]) -> str:
    """Human-readable report in (path, line, rule) order, deduped."""
    ordered = _sorted(diagnostics)
    if not ordered:
        return "no findings"
    lines = []
    for d in ordered:
        lines.append(f"{d.severity.value.upper():7s} {d.rule_id} [{d.subject}] {d.message}")
        if d.hint:
            lines.append(f"        hint: {d.hint}")
    counts = {s: 0 for s in Severity}
    for d in ordered:
        counts[d.severity] += 1
    summary = ", ".join(
        f"{counts[s]} {s.value}" for s in (Severity.ERROR, Severity.WARNING, Severity.INFO)
        if counts[s]
    )
    lines.append(f"-- {len(ordered)} finding(s): {summary}")
    return "\n".join(lines)


def render_json(diagnostics: list[Diagnostic]) -> str:
    """Machine-readable report for CI and tooling (deduped, diff-stable)."""
    ordered = _sorted(diagnostics)
    payload = {
        "schema": "repro.analysis/v1",
        "count": len(ordered),
        "max_severity": (
            max_severity(ordered).value if ordered else None
        ),
        "diagnostics": [d.as_dict() for d in ordered],
    }
    return json.dumps(payload, indent=2)
