"""Solver playground: exact LU vs truncated CG vs CG-FP16 (paper §IV).

Trains the same model with the three solver settings and shows that the
approximations change simulated cost dramatically while leaving the
convergence curve essentially untouched — the paper's core 'approximate
computing' claim, measured numerically.

Run:  python examples/solver_comparison.py
"""

from repro import ALSConfig, ALSModel, CGConfig, Precision, SolverKind, load_surrogate


def main() -> None:
    split, spec = load_surrogate("netflix", scale=0.25)
    print(f"training on {split.train}\n")

    settings = {
        "LU-FP32 (exact)": ALSConfig(f=32, lam=spec.lam, solver=SolverKind.LU),
        "CG-FP32 (fs=6)": ALSConfig(
            f=32, lam=spec.lam, solver=SolverKind.CG, precision=Precision.FP32,
            cg=CGConfig(max_iters=6),
        ),
        "CG-FP16 (fs=6)": ALSConfig(
            f=32, lam=spec.lam, solver=SolverKind.CG, precision=Precision.FP16,
            cg=CGConfig(max_iters=6),
        ),
    }

    print(f"{'solver':18s} {'final RMSE':>10s} {'sim time (s)':>13s} {'solve share':>12s}")
    for name, cfg in settings.items():
        model = ALSModel(cfg, sim_shape=spec.paper)
        curve = model.fit(split.train, split.test, epochs=8)
        solve = sum(bd.solve for bd in model.epoch_breakdowns_)
        share = solve / curve.total_seconds
        print(f"{name:18s} {curve.final_rmse:10.4f} {curve.total_seconds:13.1f} {share:11.0%}")

    print(
        "\nSame accuracy, ~4x cheaper solve with CG, ~8x with CG-FP16 —"
        "\nthe paper's Figure 5, reproduced end-to-end."
    )


if __name__ == "__main__":
    main()
