"""Algorithm advisor + hybrid pipeline (the paper's §VII future work).

Asks the advisor which solver fits each of the paper's three datasets on
different hardware budgets, then demonstrates the ALS→SGD hybrid: batch
training with ALS, followed by cheap incremental SGD updates as new
ratings stream in.

Run:  python examples/algorithm_advisor.py
"""

from repro import ALSConfig, load_surrogate
from repro.core import HybridALSSGD, recommend_algorithm
from repro.data import get_dataset, train_test_split
from repro.gpusim import MAXWELL_TITANX, PASCAL_P100


def main() -> None:
    print("=== algorithm selection (paper §VII) ===")
    for name in ("netflix", "yahoomusic", "hugewiki"):
        shape = get_dataset(name).paper
        for gpus in (1, 4):
            c = recommend_algorithm(shape, device=PASCAL_P100, num_gpus=gpus)
            print(
                f"{name:11s} @ {gpus} GPU(s): {c.algorithm.upper():4s}"
                f"  (ALS {c.est_als_epoch_seconds:6.2f}s/ep,"
                f" SGD {c.est_sgd_epoch_seconds:6.2f}s/ep) — {c.reasons[0]}"
            )
    c = recommend_algorithm(get_dataset("netflix").paper, implicit=True)
    print(f"netflix-implicit:      {c.algorithm.upper()}  — {c.reasons[0]}")

    print("\n=== hybrid ALS -> SGD incremental updates ===")
    split, spec = load_surrogate("netflix", scale=0.2)
    # Hold back a slice of training data to play the role of a stream.
    stream_split = train_test_split(split.train, 0.15, seed=99)
    model = HybridALSSGD(ALSConfig(f=32, lam=spec.lam), sim_shape=spec.paper)
    model.fit(stream_split.train, split.test, epochs=8)
    batch_clock = model.engine.clock
    print(f"batch ALS: test RMSE {model.als.score(split.test):.4f} "
          f"in {batch_clock:.1f} simulated seconds")

    before = model.als.score(stream_split.test)
    after = model.update(stream_split.test)
    incr_clock = model.engine.clock - batch_clock
    print(f"stream batch of {stream_split.test.nnz} new ratings:")
    print(f"  RMSE on new ratings: {before:.4f} -> {after:.4f}")
    print(f"  incremental cost: {incr_clock:.3f}s vs {batch_clock / 8:.3f}s per ALS epoch")


if __name__ == "__main__":
    main()
