"""Movie recommender: end-to-end explicit-feedback workflow.

The workload the paper's introduction motivates — a recommender system
over user/movie ratings.  Builds a rating matrix, trains cuMF_ALS,
evaluates held-out RMSE, and produces top-N recommendations for a few
users (excluding movies they already rated).

Run:  python examples/movie_recommender.py
"""

import numpy as np

from repro import ALSConfig, ALSModel, load_surrogate


def top_n_unseen(model: ALSModel, train, user: int, n: int = 5) -> list[tuple[int, float]]:
    """Highest-predicted unrated items for ``user``."""
    seen, _ = train.user_items(user)
    scores = model.x_[user] @ model.theta_.T
    scores[seen] = -np.inf
    best = np.argpartition(scores, -n)[-n:]
    best = best[np.argsort(scores[best])[::-1]]
    return [(int(i), float(scores[i])) for i in best]


def main() -> None:
    split, spec = load_surrogate("netflix", scale=0.3)
    train, test = split.train, split.test
    print(f"training on {train} (ratings {spec.rating_min}-{spec.rating_max})")

    model = ALSModel(ALSConfig(f=48, lam=spec.lam), sim_shape=spec.paper)
    curve = model.fit(train, test, epochs=12)
    print(f"test RMSE after {len(curve.points)} epochs: {curve.final_rmse:.4f}")
    print(f"simulated full-Netflix training time: {curve.total_seconds:.1f}s on Maxwell")

    # Recommend for the three most active users.
    active = np.argsort(train.row_counts())[::-1][:3]
    for u in active:
        recs = top_n_unseen(model, train, int(u))
        pretty = ", ".join(f"movie {i} ({s:.2f})" for i, s in recs)
        print(f"user {u} ({train.row_counts()[u]} ratings) -> {pretty}")

    # Sanity: recommendations score above the user's average prediction.
    u = int(active[0])
    seen, _ = train.user_items(u)
    avg_seen = float(np.mean(model.x_[u] @ model.theta_[seen].T))
    best_score = top_n_unseen(model, train, u, 1)[0][1]
    print(f"\nuser {u}: best unseen score {best_score:.2f} vs seen average {avg_seen:.2f}")


if __name__ == "__main__":
    main()
