"""Multi-GPU scaling study on a Hugewiki-style workload (paper §V-C).

Prices the same ALS training on 1, 2 and 4 simulated Pascal P100s
joined by NVLink and reports the strong-scaling speedup — the regime
where the paper converges Hugewiki in 68 s on four GPUs.

Run:  python examples/multi_gpu_scaling.py
"""

from repro import ALSConfig, MultiGpuALS, load_surrogate


def main() -> None:
    split, spec = load_surrogate("hugewiki", scale=0.15)
    print(f"surrogate: {split.train}; priced at paper scale {spec.paper}")

    times = {}
    for gpus in (1, 2, 4):
        model = MultiGpuALS(
            ALSConfig(f=32, lam=spec.lam),
            num_gpus=gpus,
            sim_shape=spec.paper,
        )
        curve = model.fit(split.train, split.test, epochs=6)
        times[gpus] = curve.total_seconds
        comm = sum(e.seconds_by_tag().get("comm", 0.0) for e in model.engines) / gpus
        print(
            f"{gpus} GPU(s): {curve.total_seconds:7.1f}s total, "
            f"{comm:6.2f}s avg comm, final RMSE {curve.final_rmse:.4f}"
        )

    print("\nstrong scaling (vs 1 GPU):")
    for gpus, t in times.items():
        print(f"  {gpus} GPU(s): speedup {times[1] / t:4.2f}x (ideal {gpus}x)")


if __name__ == "__main__":
    main()
