"""Quickstart: factorize a Netflix-like rating matrix with cuMF_ALS.

Trains the paper's ALS (non-coalesced cached reads, truncated CG, FP16
A-storage) on a synthetic Netflix surrogate, printing test RMSE against
the simulated training time a Maxwell Titan X would need at full
Netflix scale.

Run:  python examples/quickstart.py
"""

from repro import ALSConfig, ALSModel, load_surrogate


def main() -> None:
    # A scaled-down synthetic Netflix: same aspect ratio, density and
    # rating scale; 10% random holdout.
    split, spec = load_surrogate("netflix", scale=0.3)
    print(f"dataset: {spec.name} surrogate -> {split.train}")
    print(f"paper-scale shape priced by the simulator: {spec.paper}")

    model = ALSModel(
        ALSConfig(f=32, lam=spec.lam),  # defaults: CG(fs=6), FP16, nonCoal-L1
        sim_shape=spec.paper,
    )
    curve = model.fit(split.train, split.test, epochs=10)

    print("\nepoch  sim-seconds  test-RMSE  train-RMSE")
    for p in curve.points:
        print(f"{p.epoch:5d}  {p.seconds:11.2f}  {p.rmse:9.4f}  {p.train_rmse:10.4f}")

    print("\nsimulated kernel-time ledger (seconds):")
    for name, secs in sorted(model.engine.seconds_by_name().items()):
        print(f"  {name:15s} {secs:8.3f}")

    # Predict a few ratings.
    import numpy as np

    users = np.array([0, 1, 2])
    items = np.array([0, 1, 2])
    print("\nsample predictions:", np.round(model.predict(users, items), 2))


if __name__ == "__main__":
    main()
