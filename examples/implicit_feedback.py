"""Implicit feedback: one-class MF over click counts (paper §V-F).

No explicit ratings — only interaction counts.  Every unobserved cell is
a weak negative (confidence 1), every observed one a strong positive
(confidence 1 + α·count).  SGD cannot exploit this structure (the matrix
is conceptually dense); ALS with the Gram-matrix trick can, which is the
paper's implicit-MF argument.

Run:  python examples/implicit_feedback.py
"""

import numpy as np

from repro import ImplicitALSConfig, ImplicitALSModel, SyntheticConfig, generate_ratings
from repro.baselines import IMPLICIT_LIB, QMF_LIB, implicit_epoch_seconds
from repro.data import get_dataset


def main() -> None:
    # Click-count data: a few thousand users x items, counts 1..30.
    clicks = generate_ratings(
        SyntheticConfig(
            m=3000, n=800, nnz=60_000, rating_min=1, rating_max=30,
            zipf_exponent=1.1, seed=11,
        )
    )
    print(f"implicit interactions: {clicks}")

    spec = get_dataset("netflix")
    model = ImplicitALSModel(
        ImplicitALSConfig(f=32, lam=0.05, alpha=20.0),
        sim_shape=spec.paper,  # price epochs at paper scale
    )
    model.fit(clicks, epochs=6)

    print("\nconfidence-weighted loss per epoch:")
    for i, loss in enumerate(model.loss_history_, 1):
        print(f"  epoch {i}: {loss:.3e}")

    # Top recommendations for a heavy user, excluding seen items.
    u = int(np.argmax(clicks.row_counts()))
    seen, _ = clicks.user_items(u)
    scores = model.recommend_scores(np.array([u]))[0]
    scores[seen] = -np.inf
    top = np.argsort(scores)[::-1][:5]
    print(f"\nuser {u}: top unseen items {top.tolist()}")

    # The paper's §V-F comparison at full Netflix scale.
    print("\nper-iteration seconds at Netflix scale (paper: 2.2 / 90 / 360):")
    print(f"  cuMF_ALS : {model.seconds_per_epoch:8.2f}")
    print(f"  implicit : {implicit_epoch_seconds(IMPLICIT_LIB, spec.paper):8.2f}")
    print(f"  QMF      : {implicit_epoch_seconds(QMF_LIB, spec.paper):8.2f}")


if __name__ == "__main__":
    main()
