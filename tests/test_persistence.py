"""Tests for model save/load."""

import numpy as np
import pytest

from repro.core import ALSConfig, ALSModel, CGConfig, Precision, ReadScheme, SolverKind
from repro.data import load_surrogate
from repro.persistence import load_factors, load_model, save_model


@pytest.fixture(scope="module")
def fitted():
    split, spec = load_surrogate("netflix", scale=0.06, seed=41)
    cfg = ALSConfig(
        f=12,
        lam=spec.lam,
        solver=SolverKind.CG,
        precision=Precision.FP16,
        read_scheme=ReadScheme.NONCOAL_L1,
        cg=CGConfig(max_iters=5, tol=1e-3),
        seed=7,
    )
    model = ALSModel(cfg)
    model.fit(split.train, split.test, epochs=3)
    return model, split


class TestRoundTrip:
    def test_factors_identical(self, fitted, tmp_path):
        model, _ = fitted
        p = tmp_path / "model.npz"
        save_model(p, model)
        again = load_model(p)
        np.testing.assert_array_equal(again.x_, model.x_)
        np.testing.assert_array_equal(again.theta_, model.theta_)

    def test_config_restored(self, fitted, tmp_path):
        model, _ = fitted
        p = tmp_path / "model.npz"
        save_model(p, model)
        again = load_model(p)
        assert again.config == model.config

    def test_predictions_identical(self, fitted, tmp_path):
        model, split = fitted
        p = tmp_path / "model.npz"
        save_model(p, model)
        again = load_model(p)
        assert again.score(split.test) == model.score(split.test)
        u = np.array([0, 1, 2])
        np.testing.assert_array_equal(again.predict(u, u), model.predict(u, u))


class TestErrors:
    def test_unfitted_save_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="not fitted"):
            save_model(tmp_path / "x.npz", ALSModel(ALSConfig(f=4)))

    def test_corrupt_shapes_rejected(self, fitted, tmp_path):
        model, _ = fitted
        p = tmp_path / "model.npz"
        save_model(p, model)
        with np.load(p) as z:
            data = dict(z)
        data["x"] = data["x"][:, :-1]  # drop a factor column
        np.savez(p, **data)
        with pytest.raises(ValueError, match="corrupt"):
            load_model(p)

    def test_wrong_version_rejected(self, fitted, tmp_path):
        import json

        model, _ = fitted
        p = tmp_path / "model.npz"
        save_model(p, model)
        with np.load(p) as z:
            data = dict(z)
        header = json.loads(bytes(data["header"].tobytes()).decode())
        header["format_version"] = 999
        data["header"] = np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)
        np.savez(p, **data)
        with pytest.raises(ValueError, match="unsupported"):
            load_model(p)


class TestHardening:
    def test_truncated_file_rejected(self, fitted, tmp_path):
        model, _ = fitted
        p = tmp_path / "model.npz"
        save_model(p, model)
        blob = p.read_bytes()
        p.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(ValueError, match="corrupt|truncated"):
            load_model(p)

    def test_bit_flip_rejected_by_checksum(self, fitted, tmp_path):
        model, _ = fitted
        p = tmp_path / "model.npz"
        save_model(p, model)
        # Rewrite with one factor value flipped but the original (now
        # stale) checksums — exactly what silent storage corruption of a
        # correctly written file looks like.
        with np.load(p) as z:
            data = dict(z)
        data["x"] = data["x"].copy()
        data["x"][0, 0] += 1.0
        np.savez(p, **data)
        with pytest.raises(ValueError, match="checksum"):
            load_model(p)

    def test_garbage_file_rejected(self, tmp_path):
        p = tmp_path / "model.npz"
        p.write_bytes(b"this is not a zip archive")
        with pytest.raises(ValueError, match="corrupt|truncated"):
            load_model(p)

    def test_save_leaves_no_temp_files(self, fitted, tmp_path):
        model, _ = fitted
        save_model(tmp_path / "model.npz", model)
        assert [f.name for f in tmp_path.iterdir()] == ["model.npz"]

    def test_save_replaces_atomically(self, fitted, tmp_path):
        model, _ = fitted
        p = tmp_path / "model.npz"
        save_model(p, model)
        first = load_model(p)
        save_model(p, model)  # overwrite in place via os.replace
        again = load_model(p)
        np.testing.assert_array_equal(again.x_, first.x_)

    def test_version1_files_still_load(self, fitted, tmp_path):
        import json

        model, _ = fitted
        p = tmp_path / "model.npz"
        save_model(p, model)
        # Re-encode as a pre-checksum v1 archive (plain savez, no
        # checksums key) — old files must keep loading.
        with np.load(p) as z:
            data = dict(z)
        header = json.loads(bytes(data["header"].tobytes()).decode())
        header["format_version"] = 1
        header.pop("checksums", None)
        data["header"] = np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)
        np.savez(p, **data)
        again = load_model(p)
        np.testing.assert_array_equal(again.x_, model.x_)

    def test_mid_member_bit_flip_rejected(self, fitted, tmp_path):
        # A flipped byte inside a compressed zip member surfaces as a
        # zlib error deep in numpy; it must still come back as the
        # documented ValueError, not leak a decoder exception.
        model, _ = fitted
        p = tmp_path / "model.npz"
        save_model(p, model)
        blob = bytearray(p.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        p.write_bytes(bytes(blob))
        with pytest.raises(ValueError, match="corrupt|truncated"):
            load_model(p)


class TestLoadFactors:
    def test_returns_arrays_and_header(self, fitted, tmp_path):
        model, _ = fitted
        p = tmp_path / "model.npz"
        save_model(p, model)
        x, theta, header = load_factors(p)
        np.testing.assert_array_equal(x, model.x_)
        np.testing.assert_array_equal(theta, model.theta_)
        assert header["format_version"] == 2
        assert header["f"] == model.config.f

    def test_missing_array_rejected(self, fitted, tmp_path):
        model, _ = fitted
        p = tmp_path / "model.npz"
        save_model(p, model)
        with np.load(p) as z:
            data = dict(z)
        del data["theta"]
        np.savez(p, **data)
        with pytest.raises(ValueError, match="corrupt|checksum"):
            load_factors(p)

    def test_same_integrity_errors_as_load_model(self, tmp_path):
        p = tmp_path / "model.npz"
        p.write_bytes(b"not an archive")
        with pytest.raises(ValueError, match="corrupt|truncated"):
            load_factors(p)
