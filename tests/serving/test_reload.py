"""Hot reload: verified swaps, rollback on corruption, no-op digests."""

import numpy as np
import pytest

from repro.core.als import ALSModel
from repro.core.config import ALSConfig
from repro.persistence import save_model
from repro.serving.health import ServingHealth
from repro.serving.reload import ModelStore


def save_artifact(path, seed=0, m=6, n=8, f=4, poison=False):
    rng = np.random.default_rng(seed)
    model = ALSModel(ALSConfig(f=f, seed=seed))
    model.x_ = rng.standard_normal((m, f)).astype(np.float32)
    model.theta_ = rng.standard_normal((n, f)).astype(np.float32)
    if poison:
        model.x_[0, 0] = np.nan
    save_model(path, model)
    return model


def corrupt_file(src, dst):
    blob = bytearray(src.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    dst.write_bytes(bytes(blob))


class TestInitialLoad:
    def test_loads_factors(self, tmp_path):
        path = tmp_path / "model.npz"
        saved = save_artifact(path)
        store = ModelStore()
        outcome = store.swap(path)
        assert outcome.status == "swapped"
        assert store.version == 1
        np.testing.assert_array_equal(store.x, saved.x_)
        np.testing.assert_array_equal(store.theta, saved.theta_)

    def test_initial_corrupt_load_raises(self, tmp_path):
        path = tmp_path / "model.npz"
        save_artifact(path)
        bad = tmp_path / "bad.npz"
        corrupt_file(path, bad)
        with pytest.raises(ValueError, match="corrupt"):
            ModelStore().swap(bad)

    def test_unloaded_store_refuses_reads(self):
        with pytest.raises(RuntimeError, match="no model loaded"):
            ModelStore().x


class TestSwap:
    def test_swap_to_new_model_bumps_version(self, tmp_path):
        a, b = tmp_path / "a.npz", tmp_path / "b.npz"
        save_artifact(a, seed=0)
        other = save_artifact(b, seed=1)
        store = ModelStore()
        store.swap(a)
        outcome = store.swap(b)
        assert outcome.status == "swapped"
        assert store.version == 2
        np.testing.assert_array_equal(store.x, other.x_)

    def test_corrupt_swap_rolls_back(self, tmp_path):
        a = tmp_path / "a.npz"
        saved = save_artifact(a)
        bad = tmp_path / "bad.npz"
        corrupt_file(a, bad)
        health = ServingHealth()
        store = ModelStore()
        store.swap(a)
        outcome = store.swap(bad, health=health, tick=7)
        assert outcome.status == "rolled-back"
        assert store.version == 1
        assert store.rollbacks == 1
        np.testing.assert_array_equal(store.x, saved.x_)
        event = health.events[-1]
        assert event.kind == "reload.rolled-back"
        assert event.tick == 7

    def test_nonfinite_factors_roll_back(self, tmp_path):
        a, bad = tmp_path / "a.npz", tmp_path / "nan.npz"
        save_artifact(a, seed=0)
        save_artifact(bad, seed=1, poison=True)
        store = ModelStore()
        store.swap(a)
        outcome = store.swap(bad)
        assert outcome.status == "rolled-back"
        assert "non-finite" in outcome.detail

    def test_noop_swap_keeps_arrays_bit_identical(self, tmp_path):
        a = tmp_path / "a.npz"
        save_artifact(a)
        store = ModelStore()
        store.swap(a)
        x_before = store.x
        outcome = store.swap(a)
        assert outcome.status == "noop"
        assert store.version == 1
        # Same object — not merely equal — so served scores cannot move.
        assert store.x is x_before

    def test_health_records_each_outcome(self, tmp_path):
        a, b = tmp_path / "a.npz", tmp_path / "b.npz"
        save_artifact(a, seed=0)
        save_artifact(b, seed=1)
        health = ServingHealth()
        store = ModelStore()
        store.swap(a, health=health)
        store.swap(b, health=health)
        store.swap(b, health=health)
        assert [e.kind for e in health.events] == [
            "reload.swapped", "reload.swapped", "reload.noop",
        ]
