"""Hot reload: verified swaps, rollback on corruption, no-op digests."""

import numpy as np
import pytest

from repro.core.als import ALSModel
from repro.core.config import ALSConfig
from repro.persistence import save_model
from repro.serving.health import ServingHealth
from repro.serving.reload import ModelStore


def save_artifact(path, seed=0, m=6, n=8, f=4, poison=False):
    rng = np.random.default_rng(seed)
    model = ALSModel(ALSConfig(f=f, seed=seed))
    model.x_ = rng.standard_normal((m, f)).astype(np.float32)
    model.theta_ = rng.standard_normal((n, f)).astype(np.float32)
    if poison:
        model.x_[0, 0] = np.nan
    save_model(path, model)
    return model


def corrupt_file(src, dst):
    blob = bytearray(src.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    dst.write_bytes(bytes(blob))


class TestInitialLoad:
    def test_loads_factors(self, tmp_path):
        path = tmp_path / "model.npz"
        saved = save_artifact(path)
        store = ModelStore()
        outcome = store.swap(path)
        assert outcome.status == "swapped"
        assert store.version == 1
        np.testing.assert_array_equal(store.x, saved.x_)
        np.testing.assert_array_equal(store.theta, saved.theta_)

    def test_initial_corrupt_load_raises(self, tmp_path):
        path = tmp_path / "model.npz"
        save_artifact(path)
        bad = tmp_path / "bad.npz"
        corrupt_file(path, bad)
        with pytest.raises(ValueError, match="corrupt"):
            ModelStore().swap(bad)

    def test_unloaded_store_refuses_reads(self):
        with pytest.raises(RuntimeError, match="no model loaded"):
            ModelStore().x


class TestSwap:
    def test_swap_to_new_model_bumps_version(self, tmp_path):
        a, b = tmp_path / "a.npz", tmp_path / "b.npz"
        save_artifact(a, seed=0)
        other = save_artifact(b, seed=1)
        store = ModelStore()
        store.swap(a)
        outcome = store.swap(b)
        assert outcome.status == "swapped"
        assert store.version == 2
        np.testing.assert_array_equal(store.x, other.x_)

    def test_corrupt_swap_rolls_back(self, tmp_path):
        a = tmp_path / "a.npz"
        saved = save_artifact(a)
        bad = tmp_path / "bad.npz"
        corrupt_file(a, bad)
        health = ServingHealth()
        store = ModelStore()
        store.swap(a)
        outcome = store.swap(bad, health=health, tick=7)
        assert outcome.status == "rolled-back"
        assert store.version == 1
        assert store.rollbacks == 1
        np.testing.assert_array_equal(store.x, saved.x_)
        event = health.events[-1]
        assert event.kind == "reload.rolled-back"
        assert event.tick == 7

    def test_nonfinite_factors_roll_back(self, tmp_path):
        a, bad = tmp_path / "a.npz", tmp_path / "nan.npz"
        save_artifact(a, seed=0)
        save_artifact(bad, seed=1, poison=True)
        store = ModelStore()
        store.swap(a)
        outcome = store.swap(bad)
        assert outcome.status == "rolled-back"
        assert "non-finite" in outcome.detail

    def test_noop_swap_keeps_arrays_bit_identical(self, tmp_path):
        a = tmp_path / "a.npz"
        save_artifact(a)
        store = ModelStore()
        store.swap(a)
        x_before = store.x
        outcome = store.swap(a)
        assert outcome.status == "noop"
        assert store.version == 1
        # Same object — not merely equal — so served scores cannot move.
        assert store.x is x_before

    def test_health_records_each_outcome(self, tmp_path):
        a, b = tmp_path / "a.npz", tmp_path / "b.npz"
        save_artifact(a, seed=0)
        save_artifact(b, seed=1)
        health = ServingHealth()
        store = ModelStore()
        store.swap(a, health=health)
        store.swap(b, health=health)
        store.swap(b, health=health)
        assert [e.kind for e in health.events] == [
            "reload.swapped", "reload.swapped", "reload.noop",
        ]


class TestIndexLifecycle:
    def test_swap_builds_index_noop_skips_rebuild(self, tmp_path):
        from repro.serving.index import IndexConfig

        a, b = tmp_path / "a.npz", tmp_path / "b.npz"
        save_artifact(a, seed=0)
        save_artifact(b, seed=1)
        health = ServingHealth()
        store = ModelStore(index_config=IndexConfig(seed=0))
        store.swap(a, health=health)
        assert store.index_enabled and store.index_current
        assert store.index_builds == 1
        installed = store.index
        # Digest-noop reload: the installed index must survive untouched
        # (the rebuild is a pure function of factors that did not move).
        outcome = store.swap(a, health=health)
        assert outcome.status == "noop"
        assert store.index_builds == 1
        assert store.index is installed
        # A real swap rebuilds over the new factors.
        store.swap(b, health=health)
        assert store.index_builds == 2
        assert store.index is not installed and store.index_current
        kinds = [e.kind for e in health.events]
        assert kinds == [
            "reload.swapped", "index.built", "reload.noop",
            "reload.swapped", "index.built",
        ]

    def test_budget_skip_leaves_store_indexless(self, tmp_path):
        from repro.serving.index import IndexConfig

        a = tmp_path / "a.npz"
        save_artifact(a, n=20)
        health = ServingHealth()
        store = ModelStore(index_config=IndexConfig(budget=0))
        store.swap(a, health=health)
        assert store.index_enabled
        assert store.index is None and not store.index_current
        assert store.index_builds == 0
        assert "index.skipped" in [e.kind for e in health.events]

    def test_invalidate_drops_the_index(self, tmp_path):
        from repro.serving.index import IndexConfig

        a = tmp_path / "a.npz"
        save_artifact(a)
        store = ModelStore(index_config=IndexConfig(seed=0))
        store.swap(a)
        assert store.index_current
        store.invalidate_index()
        assert store.index is None and not store.index_current

    def test_rollback_keeps_served_index_current(self, tmp_path):
        from repro.serving.index import IndexConfig

        a, bad = tmp_path / "a.npz", tmp_path / "bad.npz"
        save_artifact(a)
        corrupt_file(a, bad)
        store = ModelStore(index_config=IndexConfig(seed=0))
        store.swap(a)
        installed = store.index
        assert store.swap(bad).status == "rolled-back"
        # The old factors keep serving, so the old index stays current.
        assert store.index is installed and store.index_current


class TestInvalidateNoopRace:
    def test_noop_reload_does_not_resurrect_invalidated_index(self, tmp_path):
        # Race seen in the drill: an operator invalidates the index, and
        # a digest-noop reload of the same artifact lands right after.
        # The noop path skips the rebuild *because the installed index is
        # over identical factors* — but here there is no installed index,
        # and the noop must not bring the dropped one back from anywhere.
        from repro.serving.index import IndexConfig

        a = tmp_path / "a.npz"
        save_artifact(a)
        store = ModelStore(index_config=IndexConfig(seed=0))
        store.swap(a)
        assert store.index_current
        store.invalidate_index()
        outcome = store.swap(a)  # bit-identical artifact: digest noop
        assert outcome.status == "noop"
        assert store.index is None and not store.index_current
        assert store.index_builds == 1  # no hidden rebuild either


class TestApplyDelta:
    def install(self, tmp_path, index=False):
        from repro.serving.index import IndexConfig

        a = tmp_path / "a.npz"
        save_artifact(a, m=8, n=10, f=4)
        store = ModelStore(
            index_config=IndexConfig(seed=0) if index else None
        )
        store.swap(a)
        return store

    def test_installs_rows_and_advances_digest_chain(self, tmp_path):
        store = self.install(tmp_path)
        before_digest = store.digest
        user_rows = np.full((2, 4), 0.5, dtype=np.float32)
        item_rows = np.full((1, 4), -1.5, dtype=np.float32)
        health = ServingHealth()
        outcome = store.apply_delta(
            users=np.array([1, 3]),
            user_rows=user_rows,
            items=np.array([7]),
            item_rows=item_rows,
            seq=12,
            health=health,
            tick=5,
        )
        assert outcome.status == "delta-applied"
        assert store.version == 2 and store.deltas_applied == 1
        assert store.digest != before_digest
        np.testing.assert_array_equal(store.x[[1, 3]], user_rows)
        np.testing.assert_array_equal(store.theta[7], item_rows[0])
        event = health.events[-1]
        assert event.kind == "reload.delta" and event.tick == 5

    def test_nonfinite_rows_roll_back(self, tmp_path):
        store = self.install(tmp_path)
        x_before = store.x.copy()
        bad = np.full((1, 4), np.nan, dtype=np.float32)
        outcome = store.apply_delta(users=np.array([0]), user_rows=bad, seq=3)
        assert outcome.status == "rolled-back"
        assert store.version == 1 and store.rollbacks == 1
        np.testing.assert_array_equal(store.x, x_before)

    def test_empty_delta_is_noop(self, tmp_path):
        store = self.install(tmp_path)
        outcome = store.apply_delta(seq=4)
        assert outcome.status == "noop"
        assert store.version == 1 and store.deltas_applied == 0

    def test_requires_a_loaded_model(self):
        with pytest.raises(RuntimeError, match="no model loaded"):
            ModelStore().apply_delta(
                users=np.array([0]),
                user_rows=np.zeros((1, 2), dtype=np.float32),
            )

    def test_row_shape_mismatch_rejected(self, tmp_path):
        store = self.install(tmp_path)
        with pytest.raises(ValueError, match="user_rows"):
            store.apply_delta(
                users=np.array([0, 1]),
                user_rows=np.zeros((1, 4), dtype=np.float32),
            )

    def test_current_index_gets_cell_surgery(self, tmp_path):
        store = self.install(tmp_path, index=True)
        assert store.index_current
        installed = store.index
        item_rows = np.full((2, 4), 3.0, dtype=np.float32)
        store.apply_delta(items=np.array([2, 9]), item_rows=item_rows, seq=8)
        # Surgery, not a rebuild: same index object, still current.
        assert store.index is installed
        assert store.index_current and store.index_builds == 1

    def test_user_only_delta_keeps_index_current(self, tmp_path):
        store = self.install(tmp_path, index=True)
        store.apply_delta(
            users=np.array([0]),
            user_rows=np.zeros((1, 4), dtype=np.float32),
            seq=2,
        )
        assert store.index_current  # user rows never enter the item index

    def test_stale_index_is_not_resurrected(self, tmp_path):
        store = self.install(tmp_path, index=True)
        store.invalidate_index()
        store.apply_delta(
            items=np.array([0]),
            item_rows=np.ones((1, 4), dtype=np.float32),
            seq=2,
        )
        assert store.index is None and not store.index_current
