"""Hot reload: verified swaps, rollback on corruption, no-op digests."""

import numpy as np
import pytest

from repro.core.als import ALSModel
from repro.core.config import ALSConfig
from repro.persistence import save_model
from repro.serving.health import ServingHealth
from repro.serving.reload import ModelStore


def save_artifact(path, seed=0, m=6, n=8, f=4, poison=False):
    rng = np.random.default_rng(seed)
    model = ALSModel(ALSConfig(f=f, seed=seed))
    model.x_ = rng.standard_normal((m, f)).astype(np.float32)
    model.theta_ = rng.standard_normal((n, f)).astype(np.float32)
    if poison:
        model.x_[0, 0] = np.nan
    save_model(path, model)
    return model


def corrupt_file(src, dst):
    blob = bytearray(src.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    dst.write_bytes(bytes(blob))


class TestInitialLoad:
    def test_loads_factors(self, tmp_path):
        path = tmp_path / "model.npz"
        saved = save_artifact(path)
        store = ModelStore()
        outcome = store.swap(path)
        assert outcome.status == "swapped"
        assert store.version == 1
        np.testing.assert_array_equal(store.x, saved.x_)
        np.testing.assert_array_equal(store.theta, saved.theta_)

    def test_initial_corrupt_load_raises(self, tmp_path):
        path = tmp_path / "model.npz"
        save_artifact(path)
        bad = tmp_path / "bad.npz"
        corrupt_file(path, bad)
        with pytest.raises(ValueError, match="corrupt"):
            ModelStore().swap(bad)

    def test_unloaded_store_refuses_reads(self):
        with pytest.raises(RuntimeError, match="no model loaded"):
            ModelStore().x


class TestSwap:
    def test_swap_to_new_model_bumps_version(self, tmp_path):
        a, b = tmp_path / "a.npz", tmp_path / "b.npz"
        save_artifact(a, seed=0)
        other = save_artifact(b, seed=1)
        store = ModelStore()
        store.swap(a)
        outcome = store.swap(b)
        assert outcome.status == "swapped"
        assert store.version == 2
        np.testing.assert_array_equal(store.x, other.x_)

    def test_corrupt_swap_rolls_back(self, tmp_path):
        a = tmp_path / "a.npz"
        saved = save_artifact(a)
        bad = tmp_path / "bad.npz"
        corrupt_file(a, bad)
        health = ServingHealth()
        store = ModelStore()
        store.swap(a)
        outcome = store.swap(bad, health=health, tick=7)
        assert outcome.status == "rolled-back"
        assert store.version == 1
        assert store.rollbacks == 1
        np.testing.assert_array_equal(store.x, saved.x_)
        event = health.events[-1]
        assert event.kind == "reload.rolled-back"
        assert event.tick == 7

    def test_nonfinite_factors_roll_back(self, tmp_path):
        a, bad = tmp_path / "a.npz", tmp_path / "nan.npz"
        save_artifact(a, seed=0)
        save_artifact(bad, seed=1, poison=True)
        store = ModelStore()
        store.swap(a)
        outcome = store.swap(bad)
        assert outcome.status == "rolled-back"
        assert "non-finite" in outcome.detail

    def test_noop_swap_keeps_arrays_bit_identical(self, tmp_path):
        a = tmp_path / "a.npz"
        save_artifact(a)
        store = ModelStore()
        store.swap(a)
        x_before = store.x
        outcome = store.swap(a)
        assert outcome.status == "noop"
        assert store.version == 1
        # Same object — not merely equal — so served scores cannot move.
        assert store.x is x_before

    def test_health_records_each_outcome(self, tmp_path):
        a, b = tmp_path / "a.npz", tmp_path / "b.npz"
        save_artifact(a, seed=0)
        save_artifact(b, seed=1)
        health = ServingHealth()
        store = ModelStore()
        store.swap(a, health=health)
        store.swap(b, health=health)
        store.swap(b, health=health)
        assert [e.kind for e in health.events] == [
            "reload.swapped", "reload.swapped", "reload.noop",
        ]


class TestIndexLifecycle:
    def test_swap_builds_index_noop_skips_rebuild(self, tmp_path):
        from repro.serving.index import IndexConfig

        a, b = tmp_path / "a.npz", tmp_path / "b.npz"
        save_artifact(a, seed=0)
        save_artifact(b, seed=1)
        health = ServingHealth()
        store = ModelStore(index_config=IndexConfig(seed=0))
        store.swap(a, health=health)
        assert store.index_enabled and store.index_current
        assert store.index_builds == 1
        installed = store.index
        # Digest-noop reload: the installed index must survive untouched
        # (the rebuild is a pure function of factors that did not move).
        outcome = store.swap(a, health=health)
        assert outcome.status == "noop"
        assert store.index_builds == 1
        assert store.index is installed
        # A real swap rebuilds over the new factors.
        store.swap(b, health=health)
        assert store.index_builds == 2
        assert store.index is not installed and store.index_current
        kinds = [e.kind for e in health.events]
        assert kinds == [
            "reload.swapped", "index.built", "reload.noop",
            "reload.swapped", "index.built",
        ]

    def test_budget_skip_leaves_store_indexless(self, tmp_path):
        from repro.serving.index import IndexConfig

        a = tmp_path / "a.npz"
        save_artifact(a, n=20)
        health = ServingHealth()
        store = ModelStore(index_config=IndexConfig(budget=0))
        store.swap(a, health=health)
        assert store.index_enabled
        assert store.index is None and not store.index_current
        assert store.index_builds == 0
        assert "index.skipped" in [e.kind for e in health.events]

    def test_invalidate_drops_the_index(self, tmp_path):
        from repro.serving.index import IndexConfig

        a = tmp_path / "a.npz"
        save_artifact(a)
        store = ModelStore(index_config=IndexConfig(seed=0))
        store.swap(a)
        assert store.index_current
        store.invalidate_index()
        assert store.index is None and not store.index_current

    def test_rollback_keeps_served_index_current(self, tmp_path):
        from repro.serving.index import IndexConfig

        a, bad = tmp_path / "a.npz", tmp_path / "bad.npz"
        save_artifact(a)
        corrupt_file(a, bad)
        store = ModelStore(index_config=IndexConfig(seed=0))
        store.swap(a)
        installed = store.index
        assert store.swap(bad).status == "rolled-back"
        # The old factors keep serving, so the old index stays current.
        assert store.index is installed and store.index_current
