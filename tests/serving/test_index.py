"""IVF retrieval index: build invariants, ball bounds, exactness knob."""

import numpy as np
import pytest

from repro.runtime.arena import Workspace
from repro.serving.batcher import MicroBatcher
from repro.serving.index import (
    DEFAULT_LLOYD_ITERS,
    IndexConfig,
    ItemIndex,
    build_index,
    clustered_catalog,
    default_ncells,
    default_nprobe,
    recall_floor,
)
from repro.serving.queue import Request


def make_catalog(n_users=16, n_items=400, f=8, seed=0, **kw):
    return clustered_catalog(n_users, n_items, f, seed=seed, **kw)


def make_requests(users, k=5):
    return [
        Request(
            request_id=i, user=u, k=k, submitted_tick=0, deadline_tick=10
        )
        for i, u in enumerate(users)
    ]


class TestDefaults:
    def test_default_ncells_is_sqrt(self):
        assert default_ncells(400) == 20
        assert default_ncells(1) == 1
        assert default_ncells(2) == 1
        with pytest.raises(ValueError):
            default_ncells(0)

    def test_default_nprobe_is_ceil_32nd(self):
        assert default_nprobe(1) == 1
        assert default_nprobe(32) == 1
        assert default_nprobe(33) == 2
        assert default_nprobe(512) == 16
        with pytest.raises(ValueError):
            default_nprobe(0)

    def test_recall_floor_shape(self):
        # Exact at the brute-force endpoint, monotone in the ratio,
        # vacuous below a quarter of the cells.
        assert recall_floor(8, 8) == 1.0
        assert recall_floor(9, 8) == 1.0
        assert recall_floor(4, 8) == pytest.approx(0.40)
        assert recall_floor(2, 8) == pytest.approx(0.12)
        assert recall_floor(1, 8) == 0.0
        floors = [recall_floor(p, 64) for p in range(1, 65)]
        assert floors == sorted(floors)
        with pytest.raises(ValueError):
            recall_floor(0, 8)
        with pytest.raises(ValueError):
            recall_floor(1, 0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            IndexConfig(ncells=0)
        with pytest.raises(ValueError):
            IndexConfig(nprobe=0)
        with pytest.raises(ValueError):
            IndexConfig(iters=0)
        with pytest.raises(ValueError):
            IndexConfig(seed=-1)
        with pytest.raises(ValueError):
            IndexConfig(budget=-1)
        assert IndexConfig().as_dict()["iters"] == DEFAULT_LLOYD_ITERS

    def test_clustered_catalog_validation(self):
        with pytest.raises(ValueError):
            clustered_catalog(0, 10, 4)
        with pytest.raises(ValueError):
            clustered_catalog(4, 10, 4, spread=0.0)
        x, theta = clustered_catalog(3, 7, 4, seed=1)
        assert x.shape == (3, 4) and theta.shape == (7, 4)
        assert x.dtype == np.float32 and theta.dtype == np.float32


class TestBuild:
    def test_layout_invariants(self):
        _, theta = make_catalog()
        index = build_index(theta, IndexConfig(seed=3))
        n = theta.shape[0]
        assert index.ncells == default_ncells(n)
        assert np.array_equal(np.sort(index.perm), np.arange(n))
        ptr = index.cell_ptr
        assert ptr[0] == 0 and ptr[-1] == n
        assert np.all(np.diff(ptr) >= 0)
        assert index.theta_perm.tobytes() == theta[index.perm].tobytes()
        assert np.all(index.radii >= 0)
        assert np.array_equal(index.empty_mask, np.diff(ptr) == 0)
        assert np.all(index.radii[index.empty_mask] == 0)

    def test_radii_bound_every_member(self):
        _, theta = make_catalog(n_items=600, seed=5)
        index = build_index(theta, IndexConfig(seed=5))
        cell_of = np.repeat(
            np.arange(index.ncells), np.diff(index.cell_ptr)
        )
        diff = index.theta_perm - index.centroids[cell_of]
        dist = np.sqrt(np.einsum("nf,nf->n", diff, diff))
        assert np.all(dist <= index.radii[cell_of] * (1 + 1e-5) + 1e-5)

    def test_build_is_deterministic(self):
        _, theta = make_catalog(seed=7)
        a = build_index(theta, IndexConfig(seed=7))
        b = build_index(theta, IndexConfig(seed=7))
        for attr in ("centroids", "radii", "perm", "cell_ptr", "theta_perm"):
            assert getattr(a, attr).tobytes() == getattr(b, attr).tobytes()

    def test_within_cell_order_is_ascending_item_id(self):
        _, theta = make_catalog()
        index = build_index(theta, IndexConfig(seed=0))
        for c in range(index.ncells):
            cell = index.perm[index.cell_ptr[c] : index.cell_ptr[c + 1]]
            assert np.all(np.diff(cell) > 0)

    def test_ncells_clamped_to_catalog(self):
        _, theta = make_catalog(n_items=5)
        index = build_index(theta, IndexConfig(ncells=32))
        assert index.ncells == 5

    def test_budget_below_one_pass_skips(self):
        _, theta = make_catalog(n_items=100)
        assert build_index(theta, IndexConfig(budget=99)) is None
        assert build_index(theta, IndexConfig(budget=0)) is None

    def test_budget_caps_lloyd_iterations(self):
        _, theta = make_catalog(n_items=100)
        index = build_index(theta, IndexConfig(budget=250))
        assert index is not None
        assert index.iters_run <= 2

    def test_nprobe_clamped_and_derived(self):
        _, theta = make_catalog()
        assert build_index(theta, IndexConfig(nprobe=10_000)).nprobe == 20
        derived = build_index(theta, IndexConfig())
        assert derived.nprobe == default_nprobe(derived.ncells)

    def test_rejects_bad_theta(self):
        with pytest.raises(ValueError):
            build_index(np.zeros(4, dtype=np.float32))
        with pytest.raises(ValueError):
            build_index(np.zeros((0, 4), dtype=np.float32))

    def test_stats_shape(self):
        _, theta = make_catalog()
        stats = build_index(theta, IndexConfig()).stats()
        assert stats["n_items"] == 400
        assert stats["ncells"] == 20
        assert stats["largest_cell"] >= 400 // 20


class TestSelectCells:
    def test_ball_bound_dominates_members(self):
        # The cell-ranking bound must upper-bound every member's score:
        # that is the premise that makes probing meaningful.
        x, theta = make_catalog(seed=2)
        index = build_index(theta, IndexConfig(seed=2))
        u = x[0]
        bounds = index.centroids @ u + np.sqrt(u @ u) * index.radii
        scores = index.theta_perm @ u
        for c in range(index.ncells):
            lo, hi = index.cell_ptr[c], index.cell_ptr[c + 1]
            if hi > lo:
                assert scores[lo:hi].max() <= bounds[c] * (1 + 1e-5) + 1e-4

    def test_probe_sets_nested_in_nprobe(self):
        x, theta = make_catalog(seed=4)
        index = build_index(theta, IndexConfig(seed=4))
        u = x[1]
        prev: set[int] = set()
        for p in range(1, index.ncells + 1):
            cells = set(index.select_cells(u, p).tolist())
            assert prev <= cells
            prev = cells

    def test_probe_ranges_merge_adjacent_cells(self):
        index = ItemIndex(
            centroids=np.zeros((4, 2), dtype=np.float32),
            radii=np.zeros(4, dtype=np.float32),
            perm=np.arange(10, dtype=np.int64),
            cell_ptr=np.array([0, 3, 3, 7, 10], dtype=np.int64),
            theta_perm=np.zeros((10, 2), dtype=np.float32),
            nprobe=1,
            seed=0,
            iters_run=1,
        )
        # Cells 0 and 2 are separated only by empty cell 1: one run.
        assert index.probe_ranges(np.array([0, 1, 2])) == [(0, 7)]
        assert index.probe_ranges(np.array([0, 3])) == [(0, 3), (7, 10)]


class TestProbedServing:
    def test_nprobe_ncells_bit_identical_to_brute(self):
        x, theta = make_catalog(n_users=12, seed=6)
        index = build_index(theta, IndexConfig(seed=6))
        batcher = MicroBatcher()
        requests = make_requests(range(12), k=7)
        brute, _ = batcher.score_batch(x, theta, requests)
        probed, _ = batcher.score_batch(
            x, theta, requests, index=index, nprobe=index.ncells
        )
        assert probed == brute

    def test_recall_monotone_and_exact_on_clusters(self):
        x, theta = make_catalog(n_users=16, n_items=500, seed=8)
        index = build_index(theta, IndexConfig(seed=8))
        batcher = MicroBatcher()
        requests = make_requests(range(16), k=5)
        brute, _ = batcher.score_batch(x, theta, requests)
        want = [frozenset(i for i, _ in row) for row in brute]
        prev = -1.0
        for p in (1, 5, 10, index.ncells):
            got, _ = batcher.score_batch(
                x, theta, requests, index=index, nprobe=p
            )
            recall = float(
                np.mean(
                    [
                        len(frozenset(i for i, _ in g) & w) / len(w)
                        for g, w in zip(got, want)
                    ]
                )
            )
            assert recall >= prev
            prev = recall
        assert prev == 1.0

    def test_per_request_nprobe_overrides_call_default(self):
        x, theta = make_catalog(n_users=4, seed=9)
        index = build_index(theta, IndexConfig(seed=9))
        exact = Request(
            request_id=0, user=0, k=4, submitted_tick=0,
            deadline_tick=10, nprobe=index.ncells,
        )
        batcher = MicroBatcher()
        brute, _ = batcher.score_batch(x, theta, make_requests([0], k=4))
        mixed, _ = batcher.score_batch(
            x, theta, [exact], index=index, nprobe=1
        )
        assert mixed == brute
        assert batcher.brute_routed == 2 and batcher.index_routed == 0

    def test_probed_exclusions_never_returned(self):
        x, theta = make_catalog(n_users=4, seed=10)
        index = build_index(theta, IndexConfig(seed=10))
        batcher = MicroBatcher()
        full, _ = batcher.score_batch(
            x, theta, make_requests([0], k=3), index=index, nprobe=2
        )
        banned = tuple(i for i, _ in full[0])
        request = Request(
            request_id=0, user=0, k=3, submitted_tick=0,
            deadline_tick=10, exclude=banned,
        )
        excluded, _ = batcher.score_batch(
            x, theta, [request], index=index, nprobe=2
        )
        assert not set(banned) & {i for i, _ in excluded[0]}

    def test_probed_poison_row_reported(self):
        x, theta = make_catalog(n_users=4, seed=11)
        index = build_index(theta, IndexConfig(seed=11))
        batcher = MicroBatcher()
        results, bad = batcher.score_batch(
            x, theta, make_requests([0, 1, 2], k=3),
            index=index, nprobe=2, poison_row=1,
        )
        assert bad == [1] and results[1] is None
        assert results[0] is not None and results[2] is not None

    def test_items_scored_is_sublinear(self):
        x, theta = make_catalog(n_users=8, n_items=900, seed=12)
        index = build_index(theta, IndexConfig(seed=12))
        batcher = MicroBatcher()
        requests = make_requests(range(8), k=5)
        batcher.score_batch(x, theta, requests, index=index, nprobe=2)
        assert batcher.index_routed == 8
        assert batcher.items_scored < 8 * 900 / 2

    def test_steady_state_probed_zero_allocations(self):
        x, theta = make_catalog(n_users=8, seed=13)
        index = build_index(theta, IndexConfig(seed=13))
        workspace = Workspace()
        batcher = MicroBatcher(workspace)
        requests = make_requests(range(8), k=4)
        batcher.score_batch(x, theta, requests, index=index, nprobe=3)
        workspace.reset_counters()
        for _ in range(10):
            batcher.score_batch(x, theta, requests, index=index, nprobe=3)
        assert workspace.allocations == 0
        assert workspace.reuses > 0
