"""ServingEngine: admission, ladder order, breaker wiring, chaos replay."""

import numpy as np
import pytest

from repro.core.als import ALSModel
from repro.core.config import ALSConfig
from repro.persistence import save_model
from repro.resilience.faults import ServingFaultPlan, expected_serving_faults
from repro.serving.breaker import BreakerConfig
from repro.serving.engine import ServingConfig, ServingEngine


NUM_USERS, NUM_ITEMS, F = 8, 12, 4


@pytest.fixture()
def model_path(tmp_path):
    rng = np.random.default_rng(0)
    model = ALSModel(ALSConfig(f=F, seed=0))
    model.x_ = rng.standard_normal((NUM_USERS, F)).astype(np.float32)
    model.theta_ = rng.standard_normal((NUM_ITEMS, F)).astype(np.float32)
    path = tmp_path / "model.npz"
    save_model(path, model)
    return path


def make_engine(model_path, *, faults=None, **config_kw):
    defaults = dict(queue_capacity=4, max_batch=2, budget_ticks=6)
    defaults.update(config_kw)
    return ServingEngine(
        model_path, config=ServingConfig(**defaults), faults=faults
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="queue_capacity"):
            ServingConfig(queue_capacity=0)
        with pytest.raises(ValueError, match="max_batch"):
            ServingConfig(max_batch=0)
        with pytest.raises(ValueError, match="budget_ticks"):
            ServingConfig(budget_ticks=-1)
        with pytest.raises(ValueError, match="cache_capacity"):
            ServingConfig(cache_capacity=0)


class TestHappyPath:
    def test_answers_match_exact_topk(self, model_path):
        engine = make_engine(model_path)
        rid = engine.submit(user=3, k=4)
        engine.run_until_drained()
        got = engine.results[rid]
        scores = engine.probe_scores(3)
        want = list(np.argsort(scores)[::-1][:4])
        assert [i for i, _ in got] == want
        assert engine.health.audit() == []
        assert engine.health.availability() == pytest.approx(1.0)

    def test_queue_full_sheds_at_the_door(self, model_path):
        engine = make_engine(model_path, queue_capacity=2)
        for _ in range(3):
            engine.submit(user=0, k=1)
        counts = engine.health.counts()
        assert counts["request.admitted"] == 2
        assert counts["request.shed"] == 1
        engine.run_until_drained()
        assert engine.health.audit() == []

    def test_zero_budget_expires_if_not_served_same_tick(self, model_path):
        engine = make_engine(model_path, max_batch=1)
        first = engine.submit(user=0, k=1, budget_ticks=0)
        second = engine.submit(user=1, k=1, budget_ticks=0)
        engine.run_until_drained()
        assert first in engine.results
        # The second missed its same-tick deadline behind the first.
        shed = [
            e for e in engine.health.events
            if e.kind == "request.shed" and e.request_id == second
        ]
        assert len(shed) == 1 and shed[0].detail == "deadline"
        assert engine.health.audit() == []

    def test_same_tick_burst_sheds_overflow_and_partitions_exactly(
        self, model_path
    ):
        # A burst bigger than the queue within one tick: the overflow is
        # shed at the door, and the terminals still form an exact
        # partition — every submitted request ends in exactly one of
        # answered / shed, nothing lost or double-counted.
        engine = make_engine(model_path, queue_capacity=4, max_batch=2)
        rids = [engine.submit(user=i % NUM_USERS, k=1) for i in range(10)]
        counts = engine.health.counts()
        assert counts["request.admitted"] == 4
        assert counts["request.shed"] == 6
        door_sheds = [
            e for e in engine.health.events if e.kind == "request.shed"
        ]
        assert all(e.detail == "queue-full" for e in door_sheds)
        engine.run_until_drained()
        assert engine.health.audit() == []
        from repro.serving.health import TERMINAL_KINDS

        terminals = [
            e for e in engine.health.events if e.kind in TERMINAL_KINDS
        ]
        assert sorted(e.request_id for e in terminals) == sorted(rids)
        assert engine.health.counts()["request.answered"] == 4

    def test_invalid_requests_fault_without_queueing(self, model_path):
        engine = make_engine(model_path)
        bad_user = engine.submit(user=99, k=1)
        bad_budget = engine.submit(user=0, k=1, budget_ticks=-1)
        bad_k = engine.submit(user=0, k=0)
        for rid in (bad_user, bad_budget, bad_k):
            assert engine.errors[rid].kind == "invalid-request"
        assert len(engine.queue) == 0
        assert engine.health.audit() == []


class TestDegradationLadder:
    def test_stall_degrades_to_popularity_when_cache_cold(self, model_path):
        plan = ServingFaultPlan(seed=0, stall_rate=1.0)
        engine = make_engine(model_path, faults=plan)
        rid = engine.submit(user=0, k=3)
        engine.tick()
        degraded = [
            e for e in engine.health.events if e.kind == "request.degraded"
        ]
        assert [e.request_id for e in degraded] == [rid]
        assert degraded[0].rung == "popularity"
        assert rid in engine.results

    def test_stale_cache_preferred_over_popularity(self, model_path):
        engine = make_engine(model_path)
        engine.submit(user=0, k=3)
        engine.run_until_drained()  # warms the cache for (user=0, k=3)
        engine.faults = ServingFaultPlan(seed=0, stall_rate=1.0)
        rid = engine.submit(user=0, k=3)
        engine.run_until_drained()
        event = [
            e for e in engine.health.events
            if e.kind == "request.degraded" and e.request_id == rid
        ][0]
        assert event.rung == "stale-cache"
        assert "model v" in event.detail

    def test_breaker_trips_under_sustained_stall(self, model_path):
        plan = ServingFaultPlan(seed=0, stall_rate=1.0)
        engine = make_engine(
            model_path,
            faults=plan,
            breaker=BreakerConfig(failure_threshold=2, cooldown_ticks=4),
        )
        for _ in range(6):
            engine.submit(user=0, k=1)
            engine.tick()
        assert engine.breaker.trips >= 1
        assert "breaker.open" in engine.health.counts()
        assert engine.health.audit() == []

    def test_nan_lane_degrades_only_the_victim(self, model_path):
        plan = ServingFaultPlan(seed=3, score_nan_rate=1.0)
        engine = make_engine(model_path, faults=plan, max_batch=2)
        a = engine.submit(user=0, k=2)
        b = engine.submit(user=1, k=2)
        engine.tick()
        counts = engine.health.counts()
        assert counts["request.answered"] == 1
        assert counts["request.degraded"] == 1
        assert a in engine.results and b in engine.results
        assert engine.health.audit() == []


class TestHotReload:
    def test_reload_serves_new_factors(self, model_path, tmp_path):
        engine = make_engine(model_path)
        rng = np.random.default_rng(1)
        other = ALSModel(ALSConfig(f=F, seed=1))
        other.x_ = rng.standard_normal((NUM_USERS, F)).astype(np.float32)
        other.theta_ = rng.standard_normal((NUM_ITEMS, F)).astype(np.float32)
        new_path = tmp_path / "model-b.npz"
        save_model(new_path, other)
        outcome = engine.reload(new_path)
        assert outcome.status == "swapped"
        np.testing.assert_array_equal(
            engine.probe_scores(0), other.theta_ @ other.x_[0]
        )

    def test_noop_reload_is_bit_equivalent(self, model_path):
        engine = make_engine(model_path)
        before = engine.probe_scores(0)
        outcome = engine.reload(engine.store.path)
        assert outcome.status == "noop"
        assert engine.probe_scores(0).tobytes() == before.tobytes()

    def test_corrupt_reload_rolls_back_without_dropping_requests(
        self, model_path, tmp_path
    ):
        blob = bytearray(model_path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        bad = tmp_path / "bad.npz"
        bad.write_bytes(bytes(blob))
        engine = make_engine(model_path)
        rid = engine.submit(user=0, k=2)
        outcome = engine.reload(bad)
        assert outcome.status == "rolled-back"
        engine.run_until_drained()
        assert rid in engine.results
        assert engine.health.audit() == []
        assert engine.store.version == 1


class TestChaosDeterminism:
    def drive(self, model_path, seed):
        plan = ServingFaultPlan(
            seed=seed, stall_rate=0.3, reload_rate=0.1,
            corrupt_rate=0.1, score_nan_rate=0.2,
        )
        engine = make_engine(model_path, faults=plan)
        rng = np.random.default_rng(42)
        for _ in range(20):
            engine.submit(user=int(rng.integers(0, NUM_USERS)), k=3)
            engine.tick()
        engine.run_until_drained()
        return engine

    def test_same_seed_replays_the_same_log(self, model_path):
        a = self.drive(model_path, seed=7)
        b = self.drive(model_path, seed=7)
        assert a.health.events == b.health.events

    def test_fault_log_matches_plan_enumeration(self, model_path):
        engine = self.drive(model_path, seed=7)
        expected = expected_serving_faults(engine.faults, engine.tick_now)
        missing, extra = engine.health.account_faults(expected)
        assert missing == [] and extra == []
        assert engine.health.audit() == []


class TestRetrievalIndex:
    def make_indexed(self, model_path, *, nprobe=None, faults=None):
        from repro.serving.index import IndexConfig

        return ServingEngine(
            model_path,
            config=ServingConfig(queue_capacity=8, max_batch=4, budget_ticks=6),
            faults=faults,
            index_config=IndexConfig(seed=0),
            nprobe=nprobe,
        )

    def test_init_validates_nprobe(self, model_path):
        with pytest.raises(ValueError, match="nprobe"):
            self.make_indexed(model_path, nprobe=0)

    def test_index_built_at_install_and_answers(self, model_path):
        engine = self.make_indexed(model_path)
        stats = engine.stats()
        assert stats["index_enabled"] and stats["index_current"]
        assert stats["index_builds"] == 1
        rid = engine.submit(user=1, k=3)
        engine.run_until_drained()
        assert len(engine.results[rid]) == 3
        # Served through the probed path as a full answer, not a rung.
        kinds = [e.kind for e in engine.health.events]
        assert "request.answered" in kinds
        assert engine.batcher.index_routed == 1
        assert engine.health.availability() == pytest.approx(1.0)

    def test_nprobe_ncells_matches_exact_topk(self, model_path):
        engine = self.make_indexed(model_path)
        ncells = engine.store.index.ncells
        rid = engine.submit(user=3, k=4, nprobe=ncells)
        engine.run_until_drained()
        scores = engine.probe_scores(3)
        want = list(np.argsort(scores)[::-1][:4])
        assert [i for i, _ in engine.results[rid]] == want

    def test_missing_index_serves_brute_force_rung(self, model_path):
        engine = self.make_indexed(model_path)
        engine.store.invalidate_index()
        rid = engine.submit(user=2, k=4)
        engine.run_until_drained()
        # Answered exactly (the brute GEMM) but attributed to the rung.
        scores = engine.probe_scores(2)
        want = list(np.argsort(scores)[::-1][:4])
        assert [i for i, _ in engine.results[rid]] == want
        degraded = [
            e for e in engine.health.events if e.kind == "request.degraded"
        ]
        assert [e.rung for e in degraded] == ["brute-force"]
        # The rung is a terminal outcome: the audit still partitions.
        assert engine.health.audit() == []
        assert engine.health.availability() == pytest.approx(1.0)

    def test_no_index_config_serves_plain_answers(self, model_path):
        engine = make_engine(model_path)
        stats = engine.stats()
        assert not stats["index_enabled"]
        assert stats["index"] is None
        rid = engine.submit(user=0, k=2)
        engine.run_until_drained()
        assert len(engine.results[rid]) == 2
        assert engine.batcher.index_routed == 0
