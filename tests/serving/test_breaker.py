"""Circuit breaker: trip threshold, bounded exponential cooldown, probes."""

import pytest

from repro.serving.breaker import BreakerConfig, CircuitBreaker
from repro.serving.health import ServingHealth


def make_breaker(health=None, **kw):
    defaults = dict(
        failure_threshold=3, cooldown_ticks=4, backoff_factor=2,
        max_cooldown_ticks=16,
    )
    defaults.update(kw)
    return CircuitBreaker(BreakerConfig(**defaults), health)


class TestBreakerConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ValueError, match="cooldown_ticks"):
            BreakerConfig(cooldown_ticks=0)
        with pytest.raises(ValueError, match="backoff_factor"):
            BreakerConfig(backoff_factor=0)
        with pytest.raises(ValueError, match="max_cooldown_ticks"):
            BreakerConfig(cooldown_ticks=8, max_cooldown_ticks=4)


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self):
        b = make_breaker()
        assert b.state == "closed"
        assert b.allow(0)

    def test_trips_open_after_threshold_consecutive_failures(self):
        b = make_breaker()
        for tick in range(2):
            b.record_failure(tick)
        assert b.state == "closed"
        b.record_failure(2)
        assert b.state == "open"
        assert not b.allow(3)

    def test_success_resets_the_consecutive_count(self):
        b = make_breaker()
        b.record_failure(0)
        b.record_failure(1)
        b.record_success(2)
        b.record_failure(3)
        b.record_failure(4)
        assert b.state == "closed"

    def test_half_open_probe_after_cooldown(self):
        b = make_breaker()
        for tick in range(3):
            b.record_failure(tick)
        # Cooldown is 4 ticks from the trip at tick 2.
        assert not b.allow(5)
        assert b.allow(6)
        assert b.state == "half-open"

    def test_probe_success_closes_and_resets_cooldown(self):
        b = make_breaker()
        for tick in range(3):
            b.record_failure(tick)
        assert b.allow(6)
        b.record_success(6)
        assert b.state == "closed"
        # A fresh trip uses the base cooldown again.
        for tick in range(7, 10):
            b.record_failure(tick)
        assert not b.allow(12)
        assert b.allow(13)

    def test_probe_failure_doubles_cooldown_bounded(self):
        b = make_breaker()
        for tick in range(3):
            b.record_failure(tick)  # open at 2; reopen at 6
        assert b.allow(6)
        b.record_failure(6)  # cooldown 8; reopen at 14
        assert b.state == "open"
        assert not b.allow(13)
        assert b.allow(14)
        b.record_failure(14)  # cooldown hits the 16 cap; reopen at 30
        assert not b.allow(29)
        assert b.allow(30)
        b.record_failure(30)  # stays capped at 16; reopen at 46
        assert not b.allow(45)
        assert b.allow(46)

    def test_half_open_admits_exactly_one_probe_under_interleaving(self):
        # A fleet shares one breaker across callers: while the probe is
        # in flight, every other allow() at the same (or a later) tick
        # must be refused — otherwise a second caller could hammer the
        # backend the breaker is supposed to be protecting.
        b = make_breaker()
        for tick in range(3):
            b.record_failure(tick)
        assert b.allow(6)  # first caller wins the probe
        assert b.state == "half-open"
        assert not b.allow(6)  # interleaved caller, same tick
        assert not b.allow(7)  # interleaved caller, later tick
        b.record_success(7)
        assert b.state == "closed"
        assert b.allow(7)  # closed again: everyone admitted

    def test_probe_slot_reopens_after_probe_failure(self):
        b = make_breaker()
        for tick in range(3):
            b.record_failure(tick)
        assert b.allow(6)
        assert not b.allow(6)
        b.record_failure(6)  # probe failed: back to open, slot cleared
        assert b.state == "open"
        assert not b.allow(13)
        assert b.allow(14)  # next cooldown expiry admits a fresh probe
        assert not b.allow(14)

    def test_transitions_recorded_in_health_log(self):
        health = ServingHealth()
        b = make_breaker(health)
        for tick in range(3):
            b.record_failure(tick)
        assert b.allow(6)
        b.record_success(6)
        kinds = [e.kind for e in health.events]
        assert kinds == ["breaker.open", "breaker.half-open", "breaker.closed"]
        assert b.trips == 1
