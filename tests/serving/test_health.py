"""ServingHealth: multiset audit, fault accounting, availability math."""

import json

import pytest

from repro.serving.health import ServingEvent, ServingHealth


def record_full_life(health, rid, *, outcome="request.answered", rung=""):
    health.record("request.submitted", tick=0, request_id=rid)
    health.record("request.admitted", tick=0, request_id=rid)
    health.record(outcome, tick=1, request_id=rid, rung=rung)


class TestServingEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown serving event kind"):
            ServingEvent(kind="request.vanished")

    def test_degraded_requires_a_rung(self):
        with pytest.raises(ValueError, match="ladder rung"):
            ServingEvent(kind="request.degraded")
        ServingEvent(kind="request.degraded", rung="stale-cache")


class TestAudit:
    def test_clean_log_balances(self):
        health = ServingHealth()
        record_full_life(health, 0)
        record_full_life(health, 1, outcome="request.degraded", rung="popularity")
        health.record("request.submitted", tick=2, request_id=2)
        health.record("request.shed", tick=2, request_id=2, detail="queue-full")
        assert health.audit() == []

    def test_missing_terminal_is_a_violation(self):
        health = ServingHealth()
        health.record("request.submitted", tick=0, request_id=0)
        health.record("request.admitted", tick=0, request_id=0)
        assert any("0 terminal" in v for v in health.audit())

    def test_double_terminal_is_a_violation(self):
        health = ServingHealth()
        record_full_life(health, 0)
        health.record("request.answered", tick=2, request_id=0)
        assert any("2 terminal" in v for v in health.audit())

    def test_double_admission_is_a_violation(self):
        health = ServingHealth()
        record_full_life(health, 0)
        health.record("request.admitted", tick=1, request_id=0)
        assert any("admitted 2 times" in v for v in health.audit())

    def test_answer_without_admission_is_a_violation(self):
        health = ServingHealth()
        health.record("request.submitted", tick=0, request_id=0)
        health.record("request.answered", tick=1, request_id=0)
        assert any("without admission" in v for v in health.audit())

    def test_invalid_request_fault_skips_admission_legally(self):
        health = ServingHealth()
        health.record("request.submitted", tick=0, request_id=0)
        health.record(
            "request.faulted", tick=0, request_id=0, detail="invalid-request"
        )
        assert health.audit() == []

    def test_terminal_without_submission_is_a_violation(self):
        health = ServingHealth()
        health.record("request.shed", tick=0, request_id=7, detail="deadline")
        assert any("never submitted" in v for v in health.audit())

    def test_degraded_without_rung_caught_on_restored_logs(self):
        # record() enforces the rung, but from_dict must re-audit.
        health = ServingHealth.from_dict(
            {
                "events": [
                    {"kind": "request.submitted", "request_id": 0},
                    {"kind": "request.admitted", "request_id": 0},
                    {"kind": "request.degraded", "request_id": 0,
                     "rung": "stale-cache"},
                ]
            }
        )
        assert health.audit() == []


class TestAvailability:
    def test_vacuous_without_traffic(self):
        assert ServingHealth().availability() == pytest.approx(1.0)

    def test_served_over_admitted(self):
        health = ServingHealth()
        record_full_life(health, 0)
        record_full_life(health, 1, outcome="request.degraded", rung="popularity")
        record_full_life(health, 2, outcome="request.shed")
        record_full_life(health, 3, outcome="request.faulted")
        assert health.availability() == pytest.approx(0.5)


class TestFaultAccounting:
    def test_balanced(self):
        health = ServingHealth()
        health.record("fault.backend-stall", tick=3)
        health.record("fault.score-nan", tick=5)
        missing, extra = health.account_faults(
            [("fault.backend-stall", 3), ("fault.score-nan", 5)]
        )
        assert missing == [] and extra == []

    def test_missing_and_extra(self):
        health = ServingHealth()
        health.record("fault.backend-stall", tick=3)
        health.record("fault.corrupt-model-file", tick=9)
        missing, extra = health.account_faults(
            [("fault.backend-stall", 3), ("fault.score-nan", 5)]
        )
        assert missing == [("fault.score-nan", 5)]
        assert extra == [("fault.corrupt-model-file", 9)]


class TestSerialization:
    def test_json_roundtrip_preserves_audit(self):
        health = ServingHealth()
        record_full_life(health, 0)
        health.record("breaker.open", tick=4)
        restored = ServingHealth.from_dict(json.loads(health.to_json()))
        assert len(restored) == len(health)
        assert restored.audit() == health.audit() == []
        assert restored.counts() == health.counts()


class TestReadYourWrites:
    def ack(self, health, seq, user, tick):
        health.record("ingest.acked", tick=tick, request_id=seq, user=user)

    def applied(self, health, seq, tick):
        health.record("ingest.applied", tick=tick, request_id=seq)

    def scored(self, health, user, tick, kind="request.answered", rung=""):
        health.record(kind, tick=tick, request_id=900 + tick, user=user, rung=rung)

    def test_clean_ordering_balances(self):
        health = ServingHealth()
        self.ack(health, seq=0, user=3, tick=1)
        self.applied(health, seq=0, tick=2)
        self.scored(health, user=3, tick=4)
        assert health.read_your_writes_audit() == []

    def test_unapplied_ack_before_fresh_score_is_a_violation(self):
        health = ServingHealth()
        self.ack(health, seq=0, user=3, tick=1)
        self.scored(health, user=3, tick=4)
        self.applied(health, seq=0, tick=6)  # too late
        violations = health.read_your_writes_audit()
        assert any("unapplied" in v for v in violations)

    def test_other_users_writes_do_not_block(self):
        health = ServingHealth()
        self.ack(health, seq=0, user=1, tick=1)
        self.scored(health, user=2, tick=3)  # different user
        self.applied(health, seq=0, tick=5)
        assert health.read_your_writes_audit() == []

    def test_stale_rungs_are_exempt(self):
        # stale-cache and popularity advertise staleness by name; only
        # freshly scored terminals carry the read-your-writes promise.
        health = ServingHealth()
        self.ack(health, seq=0, user=3, tick=1)
        self.scored(
            health, user=3, tick=3, kind="request.degraded", rung="stale-cache"
        )
        self.applied(health, seq=0, tick=5)
        assert health.read_your_writes_audit() == []

    def test_brute_force_rung_is_fresh(self):
        health = ServingHealth()
        self.ack(health, seq=0, user=3, tick=1)
        self.scored(
            health, user=3, tick=3, kind="request.degraded", rung="brute-force"
        )
        self.applied(health, seq=0, tick=5)
        violations = health.read_your_writes_audit()
        assert any("unapplied" in v for v in violations)

    def test_ack_without_apply_is_a_violation(self):
        health = ServingHealth()
        self.ack(health, seq=0, user=1, tick=1)
        violations = health.read_your_writes_audit()
        assert any("applied 0 times" in v for v in violations)

    def test_apply_without_ack_is_a_violation(self):
        health = ServingHealth()
        self.applied(health, seq=7, tick=2)
        violations = health.read_your_writes_audit()
        assert any("never acked" in v for v in violations)

    def test_double_ack_and_double_apply_are_violations(self):
        health = ServingHealth()
        self.ack(health, seq=0, user=1, tick=1)
        self.ack(health, seq=0, user=1, tick=2)
        self.applied(health, seq=0, tick=3)
        self.applied(health, seq=0, tick=4)
        violations = health.read_your_writes_audit()
        assert any("acked twice" in v for v in violations)
        assert any("applied 2 times" in v for v in violations)

    def test_apply_before_ack_tick_is_a_violation(self):
        health = ServingHealth()
        self.applied(health, seq=0, tick=1)
        self.ack(health, seq=0, user=1, tick=3)
        violations = health.read_your_writes_audit()
        assert any("before its ack" in v for v in violations)

    def test_same_tick_apply_satisfies_the_promise(self):
        # Publishing at the top of the serving tick is the drill's
        # pattern: apply and score on the same tick is legal.
        health = ServingHealth()
        self.ack(health, seq=0, user=3, tick=1)
        self.applied(health, seq=0, tick=4)
        self.scored(health, user=3, tick=4)
        assert health.read_your_writes_audit() == []
