"""Ladder rungs: stale-cache LRU semantics, popularity determinism."""

import numpy as np
import pytest

from repro.serving.fallback import PopularityFallback, StaleCache


class TestStaleCache:
    def test_miss_then_hit(self):
        cache = StaleCache(capacity=4)
        assert cache.get(0, 5) is None
        cache.put(0, 5, [(1, 2.0)], version=1)
        assert cache.get(0, 5) == (1, [(1, 2.0)])
        assert cache.hits == 1
        assert cache.misses == 1

    def test_k_is_part_of_the_key(self):
        cache = StaleCache(capacity=4)
        cache.put(0, 5, [(1, 2.0)], version=1)
        assert cache.get(0, 3) is None

    def test_lru_eviction_order(self):
        cache = StaleCache(capacity=2)
        cache.put(0, 1, [(0, 0.0)], version=1)
        cache.put(1, 1, [(1, 0.0)], version=1)
        cache.get(0, 1)  # refresh user 0
        cache.put(2, 1, [(2, 0.0)], version=1)  # evicts user 1
        assert cache.get(1, 1) is None
        assert cache.get(0, 1) is not None
        assert len(cache) == 2

    def test_returned_list_is_a_copy(self):
        cache = StaleCache(capacity=2)
        cache.put(0, 1, [(1, 2.0)], version=1)
        _, recs = cache.get(0, 1)
        recs.append((9, 9.0))
        assert cache.get(0, 1) == (1, [(1, 2.0)])

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            StaleCache(capacity=0)


class TestPopularityFallback:
    def test_orders_by_popularity_desc(self):
        fb = PopularityFallback(np.array([1.0, 5.0, 3.0]))
        assert [i for i, _ in fb.top_k(3)] == [1, 2, 0]

    def test_ties_break_by_item_id(self):
        fb = PopularityFallback(np.array([2.0, 2.0, 2.0]))
        assert [i for i, _ in fb.top_k(3)] == [0, 1, 2]

    def test_exclusions_are_skipped(self):
        fb = PopularityFallback(np.array([1.0, 5.0, 3.0]))
        assert [i for i, _ in fb.top_k(2, exclude=(1,))] == [2, 0]

    def test_k_beyond_catalogue_returns_all(self):
        fb = PopularityFallback(np.array([1.0, 2.0]))
        assert len(fb.top_k(10)) == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty 1-D"):
            PopularityFallback(np.zeros((2, 2)))
        with pytest.raises(ValueError, match="finite"):
            PopularityFallback(np.array([1.0, np.nan]))
        with pytest.raises(ValueError, match="k must be"):
            PopularityFallback(np.array([1.0])).top_k(0)
