"""Micro-batcher: one GEMM per batch, NaN detection, arena reuse."""

import numpy as np
import pytest

from repro.runtime.arena import Workspace
from repro.serving.batcher import MicroBatcher
from repro.serving.queue import Request


def make_factors(m=6, n=10, f=4, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((m, f)).astype(np.float32)
    theta = rng.standard_normal((n, f)).astype(np.float32)
    return x, theta


def make_request(rid, user, k=3, exclude=()):
    return Request(
        request_id=rid, user=user, k=k,
        submitted_tick=0, deadline_tick=10, exclude=exclude,
    )


class TestScoreBatch:
    def test_matches_per_user_gemv(self):
        x, theta = make_factors()
        batcher = MicroBatcher()
        requests = [make_request(i, user=i % 6) for i in range(4)]
        results, bad = batcher.score_batch(x, theta, requests)
        assert bad == []
        for request, got in zip(requests, results):
            scores = theta @ x[request.user]
            want = np.argsort(scores)[::-1][: request.k]
            assert [i for i, _ in got] == list(want)
            for item, score in got:
                assert score == pytest.approx(float(scores[item]), rel=1e-6)

    def test_empty_batch(self):
        x, theta = make_factors()
        assert MicroBatcher().score_batch(x, theta, []) == ([], [])

    def test_exclusions_never_returned(self):
        x, theta = make_factors()
        banned = (0, 1, 2)
        results, _ = MicroBatcher().score_batch(
            x, theta, [make_request(0, user=0, k=5, exclude=banned)]
        )
        assert not set(banned) & {i for i, _ in results[0]}

    def test_poisoned_row_reported_not_answered(self):
        x, theta = make_factors()
        requests = [make_request(i, user=i) for i in range(3)]
        results, bad = MicroBatcher().score_batch(
            x, theta, requests, poison_row=1
        )
        assert bad == [1]
        assert results[1] is None
        assert results[0] is not None and results[2] is not None

    def test_nan_factor_row_detected(self):
        x, theta = make_factors()
        x[2, 0] = np.nan
        results, bad = MicroBatcher().score_batch(
            x, theta, [make_request(0, user=2)]
        )
        assert bad == [0]

    def test_unknown_user_raises(self):
        x, theta = make_factors(m=4)
        with pytest.raises(IndexError, match="unknown user"):
            MicroBatcher().score_batch(x, theta, [make_request(0, user=99)])

    def test_ties_at_boundary_pinned_to_ascending_id(self):
        # Four identical item rows tie exactly; with k=2 the survivors
        # must be the two *lowest* ids regardless of partition order.
        rng = np.random.default_rng(0)
        x = rng.standard_normal((1, 4)).astype(np.float32)
        theta = np.tile(rng.standard_normal((1, 4)), (6, 1)).astype(
            np.float32
        )
        theta[4] *= 2.0  # one clear winner above the tied block
        results, _ = MicroBatcher().score_batch(
            x, theta, [make_request(0, user=0, k=3)]
        )
        ids = [i for i, _ in results[0]]
        if float(theta[4] @ x[0]) > float(theta[0] @ x[0]):
            assert ids == [4, 0, 1]
        else:
            assert ids == [0, 1, 2]

    def test_probed_path_pins_ties_like_brute_force(self):
        # Tied scores that straddle cell boundaries must resolve to the
        # same pinned order (score desc, id asc) on both routes.
        from repro.serving.index import IndexConfig, build_index

        rng = np.random.default_rng(3)
        x = rng.standard_normal((4, 4)).astype(np.float32)
        base = rng.standard_normal((8, 4)).astype(np.float32)
        theta = np.repeat(base, 3, axis=0)  # every score appears thrice
        index = build_index(theta, IndexConfig(seed=3))
        batcher = MicroBatcher()
        requests = [make_request(i, user=i, k=5) for i in range(4)]
        brute, _ = batcher.score_batch(x, theta, requests)
        probed, _ = batcher.score_batch(
            x, theta, requests, index=index, nprobe=index.ncells
        )
        assert probed == brute

    def test_steady_state_performs_zero_allocations(self):
        x, theta = make_factors()
        workspace = Workspace()
        batcher = MicroBatcher(workspace)
        requests = [make_request(i, user=i % 6) for i in range(5)]
        batcher.score_batch(x, theta, requests)  # warm-up
        workspace.reset_counters()
        for _ in range(10):
            batcher.score_batch(x, theta, requests)
        assert workspace.allocations == 0
        assert workspace.reuses > 0
        assert batcher.batches == 11
        assert batcher.requests_scored == 55
