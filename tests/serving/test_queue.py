"""Admission queue: bounded capacity, deadline expiry, FIFO order."""

import pytest

from repro.serving.queue import AdmissionQueue, QueueConfig, Request


def make_request(rid, *, user=0, k=5, submitted=0, deadline=10):
    return Request(
        request_id=rid, user=user, k=k,
        submitted_tick=submitted, deadline_tick=deadline,
    )


class TestRequest:
    def test_validation(self):
        with pytest.raises(ValueError, match="request_id"):
            make_request(-1)
        with pytest.raises(ValueError, match="user"):
            Request(request_id=0, user=-1, k=5, submitted_tick=0, deadline_tick=1)
        with pytest.raises(ValueError, match="k must be"):
            make_request(0, k=0)
        with pytest.raises(ValueError, match="deadline"):
            make_request(0, submitted=5, deadline=4)

    def test_zero_budget_is_legal(self):
        # A request may demand same-tick service.
        make_request(0, submitted=5, deadline=5)


class TestQueueConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            QueueConfig(capacity=0)
        with pytest.raises(ValueError, match="default_budget_ticks"):
            QueueConfig(default_budget_ticks=-1)


class TestAdmissionQueue:
    def test_bounded_capacity_sheds_at_the_door(self):
        q = AdmissionQueue(QueueConfig(capacity=2))
        assert q.offer(make_request(0))
        assert q.offer(make_request(1))
        assert not q.offer(make_request(2))
        assert len(q) == 2
        assert q.offered == 3
        assert q.rejected == 1

    def test_take_is_fifo_and_respects_batch_limit(self):
        q = AdmissionQueue(QueueConfig(capacity=8))
        for rid in range(5):
            q.offer(make_request(rid))
        ready, expired = q.take(0, max_batch=3)
        assert [r.request_id for r in ready] == [0, 1, 2]
        assert expired == []
        assert len(q) == 2

    def test_expired_requests_are_drained_not_served(self):
        q = AdmissionQueue(QueueConfig(capacity=8))
        q.offer(make_request(0, deadline=1))
        q.offer(make_request(1, deadline=9))
        ready, expired = q.take(5, max_batch=4)
        assert [r.request_id for r in ready] == [1]
        assert [r.request_id for r in expired] == [0]
        assert q.expired == 1

    def test_deadline_on_its_last_tick_is_still_live(self):
        q = AdmissionQueue(QueueConfig(capacity=4))
        q.offer(make_request(0, deadline=5))
        ready, expired = q.take(5, max_batch=1)
        assert [r.request_id for r in ready] == [0]
        assert expired == []

    def test_expiry_boundary_is_exactly_one_tick_past_deadline(self):
        # deadline_tick is inclusive: live when collected at the deadline
        # itself, expired on the very next tick — no off-by-one grace.
        q = AdmissionQueue(QueueConfig(capacity=4))
        q.offer(make_request(0, deadline=5))
        q.offer(make_request(1, deadline=5))
        ready, expired = q.take(5, max_batch=1)
        assert [r.request_id for r in ready] == [0]
        assert expired == []
        ready, expired = q.take(6, max_batch=1)
        assert ready == []
        assert [r.request_id for r in expired] == [1]

    def test_dead_requests_never_block_live_ones(self):
        # Expired entries do not consume the batch budget.
        q = AdmissionQueue(QueueConfig(capacity=8))
        for rid in range(3):
            q.offer(make_request(rid, deadline=0))
        q.offer(make_request(3, deadline=20))
        ready, expired = q.take(10, max_batch=1)
        assert [r.request_id for r in ready] == [3]
        assert len(expired) == 3

    def test_take_requires_positive_batch(self):
        q = AdmissionQueue()
        with pytest.raises(ValueError, match="max_batch"):
            q.take(0, max_batch=0)
