"""FleetEngine: supervised worker pool behind the ServingEngine contract.

The wall-clock knobs (heartbeat timeout, respawn backoff) are tuned way
down here — supervision latency is the thing under test, not realistic
production pacing.  Request accounting itself lives on the virtual tick
clock, so every assertion about health events is deterministic.
"""

import multiprocessing

import numpy as np
import pytest

from repro.core.als import ALSModel
from repro.core.config import ALSConfig
from repro.persistence import save_model
from repro.serving.engine import ServingConfig, ServingEngine
from repro.serving.fleet import FleetConfig, FleetEngine
from repro.serving.health import TERMINAL_KINDS

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fleet workers need the fork start method",
)

NUM_USERS, NUM_ITEMS, F = 8, 12, 4


@pytest.fixture()
def model_path(tmp_path):
    rng = np.random.default_rng(0)
    model = ALSModel(ALSConfig(f=F, seed=0))
    model.x_ = rng.standard_normal((NUM_USERS, F)).astype(np.float32)
    model.theta_ = rng.standard_normal((NUM_ITEMS, F)).astype(np.float32)
    path = tmp_path / "model.npz"
    save_model(path, model)
    return path


FAST = dict(
    heartbeat_timeout=0.05,
    respawn_backoff_seconds=0.001,
    respawn_backoff_max=0.01,
)


def make_fleet(model_path, *, workers=2, faults=None, fleet_kw=None,
               **config_kw):
    defaults = dict(queue_capacity=8, max_batch=4, budget_ticks=6)
    defaults.update(config_kw)
    fleet = FleetConfig(workers=workers, **{**FAST, **(fleet_kw or {})})
    return FleetEngine(
        model_path,
        fleet=fleet,
        config=ServingConfig(**defaults),
        faults=faults,
    )


def terminals_of(engine):
    return {
        e.request_id: e.kind
        for e in engine.health.events
        if e.kind in TERMINAL_KINDS
    }


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="workers"):
            FleetConfig(workers=0)
        with pytest.raises(ValueError, match="heartbeat_timeout"):
            FleetConfig(heartbeat_timeout=0.0)
        with pytest.raises(ValueError, match="batch_deadline"):
            FleetConfig(batch_deadline=0.0)
        with pytest.raises(ValueError, match="max_respawns"):
            FleetConfig(max_respawns=-1)
        with pytest.raises(ValueError, match="respawn_backoff_factor"):
            FleetConfig(respawn_backoff_factor=0.5)
        with pytest.raises(ValueError, match="respawn_backoff_max"):
            FleetConfig(respawn_backoff_seconds=1.0, respawn_backoff_max=0.5)
        with pytest.raises(ValueError, match="fleet_fault_limit"):
            FleetConfig(fleet_fault_limit=0)


class TestEquivalence:
    def test_one_worker_bit_identical_to_single_engine(self, model_path):
        single = ServingEngine(
            model_path,
            config=ServingConfig(queue_capacity=8, max_batch=4,
                                 budget_ticks=6),
        )
        fleet = make_fleet(model_path, workers=1)
        try:
            rng = np.random.default_rng(7)
            for _ in range(24):
                user = int(rng.integers(0, NUM_USERS))
                k = int(rng.integers(1, 6))
                single.submit(user=user, k=k)
                fleet.submit(user=user, k=k)
                single.tick()
                fleet.tick()
            single.run_until_drained()
            fleet.run_until_drained()
            assert fleet.results == single.results  # bit-identical tuples
            assert terminals_of(fleet) == terminals_of(single)
            assert single.health.audit() == []
            assert fleet.health.audit() == []
        finally:
            fleet.close()


class TestSupervision:
    def test_mid_batch_kill_reroutes_in_the_same_tick(self, model_path):
        fleet = make_fleet(model_path, workers=2)
        try:
            # Router: users 0-3 → slot 0, users 4-7 → slot 1.
            first = fleet.submit(user=0, k=2)
            second = fleet.submit(user=5, k=2)
            fleet._kill_victim = 0
            fleet.tick()
            assert fleet.worker_deaths == 1
            assert fleet.rerouted_requests == 1
            assert first in fleet.results and second in fleet.results
            rerouted = [
                e for e in fleet.health.events
                if e.kind == "request.rerouted"
            ]
            assert [e.request_id for e in rerouted] == [first]
            assert rerouted[0].worker == 0
            # The victim's answer came from the in-process path (-1);
            # the other slot's from its worker.
            by_id = {
                e.request_id: e.worker
                for e in fleet.health.events
                if e.kind == "request.answered"
            }
            assert by_id[first] == -1
            assert by_id[second] == 1
            assert fleet.health.audit() == []
            # The slot was respawned within its strike budget.
            assert fleet.stats()["fleet_live_workers"] == 2
        finally:
            fleet.close()

    def test_heartbeat_detects_and_replaces_a_dead_idle_worker(
        self, model_path
    ):
        fleet = make_fleet(model_path, workers=2)
        try:
            fleet._workers[1].proc.kill()
            fleet._workers[1].proc.join()
            fleet.tick()  # no traffic: the heartbeat round runs
            assert fleet.heartbeat_misses == 1
            misses = [
                e for e in fleet.health.events
                if e.kind == "worker.heartbeat-miss"
            ]
            assert [e.worker for e in misses] == [1]
            assert fleet.stats()["fleet_live_workers"] == 2
        finally:
            fleet.close()

    def test_fault_limit_latches_to_the_inline_path(self, model_path):
        fleet = make_fleet(
            model_path, workers=2, fleet_kw=dict(fleet_fault_limit=1)
        )
        try:
            rid = fleet.submit(user=0, k=2)
            fleet._kill_victim = 0
            fleet.tick()
            assert fleet.stats()["fleet_inline_latched"]
            assert fleet.stats()["fleet_live_workers"] == 0
            kinds = [e.kind for e in fleet.health.events]
            assert "fleet.degrade-inline" in kinds
            # Latched, the engine still serves — in-process.
            later = fleet.submit(user=3, k=2)
            fleet.run_until_drained()
            assert rid in fleet.results and later in fleet.results
            assert fleet.health.audit() == []
        finally:
            fleet.close()


class TestReload:
    def test_swap_restages_and_respawns_every_worker(
        self, model_path, tmp_path
    ):
        rng = np.random.default_rng(1)
        other = ALSModel(ALSConfig(f=F, seed=1))
        other.x_ = rng.standard_normal((NUM_USERS, F)).astype(np.float32)
        other.theta_ = rng.standard_normal((NUM_ITEMS, F)).astype(np.float32)
        other_path = tmp_path / "model-b.npz"
        save_model(other_path, other)

        fleet = make_fleet(model_path, workers=2)
        try:
            outcome = fleet.reload(other_path)
            assert outcome.status == "swapped"
            restages = [
                e for e in fleet.health.events
                if e.kind == "worker.respawned" and "restage" in (e.detail or "")
            ]
            assert sorted(e.worker for e in restages) == [0, 1]
            # Workers now serve the new factors: their answer matches an
            # in-process engine loaded from the new artifact.
            oracle = ServingEngine(
                other_path,
                config=ServingConfig(queue_capacity=8, max_batch=4,
                                     budget_ticks=6),
            )
            want = oracle.submit(user=6, k=3)
            oracle.run_until_drained()
            got = fleet.submit(user=6, k=3)
            fleet.run_until_drained()
            assert fleet.results[got] == oracle.results[want]
            assert fleet.health.audit() == []
        finally:
            fleet.close()


class TestTeardown:
    def test_close_is_idempotent_and_stops_the_pool(self, model_path):
        fleet = make_fleet(model_path, workers=2)
        procs = [h.proc for h in fleet._workers]
        fleet.close()
        assert fleet._shm == {}
        assert all(not p.is_alive() for p in procs)
        fleet.close()  # second close is a no-op
        assert fleet.stats()["fleet_live_workers"] == 0

    def test_stats_carries_the_fleet_counters(self, model_path):
        fleet = make_fleet(model_path, workers=2)
        try:
            rid = fleet.submit(user=2, k=2)
            fleet.run_until_drained()
            assert rid in fleet.results
            stats = fleet.stats()
            for key in (
                "fleet_workers",
                "fleet_live_workers",
                "fleet_respawns",
                "fleet_faults",
                "fleet_inline_latched",
                "fleet_worker_batches",
                "fleet_inline_batches",
                "fleet_rerouted_requests",
                "fleet_heartbeat_misses",
                "fleet_worker_deaths",
            ):
                assert key in stats
            assert stats["fleet_workers"] == 2
            assert stats["fleet_worker_batches"] >= 1
        finally:
            fleet.close()
