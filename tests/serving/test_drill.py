"""The chaos drill end to end: smoke and chaos modes must both go green."""

from repro.serving.drill import AVAILABILITY_FLOOR, run_serving_drill


class TestSmokeDrill:
    def test_fault_free_smoke_is_green(self, tmp_path):
        report = run_serving_drill(
            seed=0, requests=40, chaos=False, workdir=tmp_path
        )
        assert report["ok"] is True
        assert report["mode"] == "smoke"
        assert report["expected_faults"] == 0
        assert report["availability"] == 1.0
        assert all(report["checks"].values())

    def test_report_shape(self, tmp_path):
        report = run_serving_drill(
            seed=0, requests=20, chaos=False, workdir=tmp_path
        )
        for key in (
            "ok", "mode", "seed", "requests", "ticks", "fault_plan",
            "missing_faults", "unexpected_faults", "accounting_violations",
            "availability", "availability_floor", "degraded_by_rung",
            "noop_reload", "event_counts", "engine", "checks", "health",
        ):
            assert key in report, key
        assert report["availability_floor"] == AVAILABILITY_FLOOR


class TestChaosDrill:
    def test_chaos_drill_is_green_and_accounted(self, tmp_path):
        report = run_serving_drill(
            seed=0, requests=80, chaos=True, workdir=tmp_path
        )
        assert report["ok"] is True, report["checks"]
        assert report["mode"] == "chaos"
        # Chaos actually happened and every injection is in the log.
        assert report["checks"]["faults_injected"] is True
        assert report["missing_faults"] == []
        assert report["unexpected_faults"] == []
        assert report["accounting_violations"] == []
        assert report["availability"] >= AVAILABILITY_FLOOR
        assert report["noop_reload"]["bit_equal"] is True

    def test_seeds_differ_but_each_replays(self, tmp_path):
        first = tmp_path / "a1"
        second = tmp_path / "a2"
        first.mkdir()
        second.mkdir()
        a1 = run_serving_drill(seed=3, requests=40, chaos=True, workdir=first)
        a2 = run_serving_drill(seed=3, requests=40, chaos=True, workdir=second)
        assert a1["event_counts"] == a2["event_counts"]
        assert a1["availability"] == a2["availability"]  # noqa: repro-float-eq
