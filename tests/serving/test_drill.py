"""The chaos drill end to end: smoke and chaos modes must both go green."""

import multiprocessing

import pytest

from repro.serving.drill import (
    AVAILABILITY_FLOOR,
    run_fleet_drill,
    run_serving_drill,
)


class TestSmokeDrill:
    def test_fault_free_smoke_is_green(self, tmp_path):
        report = run_serving_drill(
            seed=0, requests=40, chaos=False, workdir=tmp_path
        )
        assert report["ok"] is True
        assert report["mode"] == "smoke"
        assert report["expected_faults"] == 0
        assert report["availability"] == 1.0
        assert all(report["checks"].values())

    def test_report_shape(self, tmp_path):
        report = run_serving_drill(
            seed=0, requests=20, chaos=False, workdir=tmp_path
        )
        for key in (
            "ok", "mode", "seed", "requests", "ticks", "fault_plan",
            "missing_faults", "unexpected_faults", "accounting_violations",
            "availability", "availability_floor", "degraded_by_rung",
            "noop_reload", "event_counts", "engine", "checks", "health",
        ):
            assert key in report, key
        assert report["availability_floor"] == AVAILABILITY_FLOOR


class TestChaosDrill:
    def test_chaos_drill_is_green_and_accounted(self, tmp_path):
        report = run_serving_drill(
            seed=0, requests=80, chaos=True, workdir=tmp_path
        )
        assert report["ok"] is True, report["checks"]
        assert report["mode"] == "chaos"
        # Chaos actually happened and every injection is in the log.
        assert report["checks"]["faults_injected"] is True
        assert report["missing_faults"] == []
        assert report["unexpected_faults"] == []
        assert report["accounting_violations"] == []
        assert report["availability"] >= AVAILABILITY_FLOOR
        assert report["noop_reload"]["bit_equal"] is True

    def test_seeds_differ_but_each_replays(self, tmp_path):
        first = tmp_path / "a1"
        second = tmp_path / "a2"
        first.mkdir()
        second.mkdir()
        a1 = run_serving_drill(seed=3, requests=40, chaos=True, workdir=first)
        a2 = run_serving_drill(seed=3, requests=40, chaos=True, workdir=second)
        assert a1["event_counts"] == a2["event_counts"]
        assert a1["availability"] == a2["availability"]  # noqa: repro-float-eq


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fleet workers need the fork start method",
)
class TestFleetDrill:
    def test_fleet_smoke_is_green_and_bit_identical(self, tmp_path):
        report = run_fleet_drill(
            seed=0, requests=40, workers=2, chaos=False, workdir=tmp_path
        )
        assert report["ok"] is True, report["checks"]
        assert report["mode"] == "fleet-smoke"
        assert report["equivalence"]["bit_identical"] is True
        assert report["equivalence"]["terminals_match"] is True
        assert report["checks"]["all_answered"] is True
        assert report["availability"] == 1.0
        assert report["throughput"]["requests_per_s"] > 0

    def test_fleet_chaos_is_green_and_accounted(self, tmp_path):
        # seed 3 is the cheapest stream where every fleet kind fires at
        # this length (CI's fleet-smoke job drills seed 0 at 200).
        report = run_fleet_drill(
            seed=3, requests=80, workers=3, chaos=True, workdir=tmp_path
        )
        assert report["ok"] is True, report["checks"]
        assert report["mode"] == "fleet-chaos"
        assert report["missing_faults"] == []
        assert report["unexpected_faults"] == []
        assert report["accounting_violations"] == []
        assert report["availability"] >= AVAILABILITY_FLOOR
        # The fleet kinds actually fired and actually hurt workers.
        assert report["checks"]["worker_kills_injected"] is True
        assert report["checks"]["workers_died"] is True
        assert report["checks"]["workers_respawned"] is True
        assert report["engine"]["fleet_worker_deaths"] >= 1

    def test_fleet_drill_validates_arguments(self, tmp_path):
        with pytest.raises(ValueError, match="workers"):
            run_fleet_drill(seed=0, requests=10, workers=0, workdir=tmp_path)
        with pytest.raises(ValueError, match="requests"):
            run_fleet_drill(seed=0, requests=0, workdir=tmp_path)


class TestRetrievalInDrill:
    def test_smoke_reports_recall_above_floor(self, tmp_path):
        report = run_serving_drill(
            seed=0, requests=30, chaos=False, workdir=tmp_path
        )
        retrieval = report["retrieval"]
        assert retrieval["enabled"] is True
        assert retrieval["index_builds"] >= 1
        assert retrieval["recall_at_k"] >= retrieval["recall_floor"]
        assert report["checks"]["index_built"] is True
        assert report["checks"]["recall_met"] is True
        # Smoke answers through the index: full answers, no rungs.
        assert report["degraded_by_rung"] == {}

    def test_chaos_exercises_brute_force_rung(self, tmp_path):
        report = run_serving_drill(
            seed=0, requests=60, chaos=True, workdir=tmp_path
        )
        assert report["ok"] is True, report["checks"]
        assert report["checks"]["brute_force_rung"] is True
        assert report["degraded_by_rung"].get("brute-force", 0) >= 8
        # The extra rung exercise must not unbalance the accounting.
        assert report["accounting_violations"] == []
        assert report["missing_faults"] == []
        assert report["unexpected_faults"] == []

    def test_index_disabled_drill(self, tmp_path):
        report = run_serving_drill(
            seed=1, requests=30, chaos=True, index=False, workdir=tmp_path
        )
        assert report["ok"] is True, report["checks"]
        assert report["retrieval"] == {"enabled": False}
        assert "recall_met" not in report["checks"]
        assert "brute-force" not in report["degraded_by_rung"]

    def test_explicit_nprobe_is_exact_at_ncells(self, tmp_path):
        report = run_serving_drill(
            seed=0, requests=20, chaos=False, nprobe=64, workdir=tmp_path
        )
        retrieval = report["retrieval"]
        # Clamped to ncells: the exactness endpoint of the knob.
        assert retrieval["nprobe"] == retrieval["ncells"]
        assert retrieval["recall_at_k"] == 1.0
        assert retrieval["recall_floor"] == 1.0
