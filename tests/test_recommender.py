"""Tests for the high-level MFRecommender estimator."""

import numpy as np
import pytest

from repro.data import SyntheticConfig, generate_ratings, train_test_split
from repro.recommender import InvalidRatingsError, MFRecommender, UnknownIdError


@pytest.fixture(scope="module")
def triplets():
    ratings = generate_ratings(
        SyntheticConfig(m=500, n=200, nnz=10_000, seed=31, noise=0.2)
    )
    split = train_test_split(ratings, 0.1, seed=32)

    def coo(mat):
        rows = np.repeat(np.arange(mat.m), mat.row_counts())
        return rows, mat.col_idx, mat.row_val

    return coo(split.train), coo(split.test), split


class TestFit:
    def test_als_fit_and_score(self, triplets):
        (tu, ti, tr), (vu, vi, vr), _ = triplets
        rec = MFRecommender(factors=16, algorithm="als", epochs=6).fit(
            tu, ti, tr, num_users=500, num_items=200
        )
        assert rec.algorithm_used == "als"
        assert rec.score(vu, vi, vr) < 1.0
        assert rec.simulated_seconds > 0

    def test_sgd_fit(self, triplets):
        (tu, ti, tr), (vu, vi, vr), _ = triplets
        rec = MFRecommender(factors=16, algorithm="sgd", epochs=10).fit(
            tu, ti, tr, num_users=500, num_items=200
        )
        assert rec.algorithm_used == "sgd"
        assert rec.score(vu, vi, vr) < 1.2

    def test_auto_picks_and_reports(self, triplets):
        (tu, ti, tr), _, _ = triplets
        rec = MFRecommender(factors=16, algorithm="auto", epochs=4).fit(
            tu, ti, tr, num_users=500, num_items=200
        )
        assert rec.algorithm_used in ("als", "sgd")

    def test_implicit_fit(self, triplets):
        (tu, ti, tr), _, _ = triplets
        rec = MFRecommender(
            factors=16, implicit=True, alpha=10.0, epochs=4
        ).fit(tu, ti, tr, num_users=500, num_items=200)
        assert rec.algorithm_used == "als-implicit"
        scores = rec.predict(np.array([0, 1]), np.array([0, 1]))
        assert np.isfinite(scores).all()

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError, match="no ratings"):
            MFRecommender().fit(np.array([]), np.array([]), np.array([]))


class TestRecommend:
    @pytest.fixture(scope="class")
    def fitted(self, triplets):
        (tu, ti, tr), _, split = triplets
        rec = MFRecommender(factors=16, algorithm="als", epochs=6).fit(
            tu, ti, tr, num_users=500, num_items=200
        )
        return rec, split

    def test_top_n_sorted(self, fitted):
        rec, _ = fitted
        top = rec.recommend(0, n=5)
        assert len(top) == 5
        scores = [s for _, s in top]
        assert scores == sorted(scores, reverse=True)

    def test_exclude_seen(self, fitted):
        rec, split = fitted
        seen, _ = split.train.user_items(0)
        top = rec.recommend(0, n=10, exclude=seen)
        assert not set(i for i, _ in top) & set(seen.tolist())

    def test_n_larger_than_catalog(self, fitted):
        rec, _ = fitted
        top = rec.recommend(0, n=10_000)
        assert len(top) == 200

    def test_unknown_ids(self, fitted):
        rec, _ = fitted
        with pytest.raises(IndexError):
            rec.recommend(9999)
        with pytest.raises(IndexError):
            rec.predict(np.array([0]), np.array([9999]))

    def test_predictions_match_recommend_scores(self, fitted):
        rec, _ = fitted
        top = rec.recommend(3, n=1)
        item, score = top[0]
        assert rec.predict(np.array([3]), np.array([item]))[0] == pytest.approx(score)


class TestValidation:
    def test_bad_params(self):
        with pytest.raises(ValueError):
            MFRecommender(factors=0)
        with pytest.raises(ValueError):
            MFRecommender(regularization=-1)
        with pytest.raises(ValueError):
            MFRecommender(algorithm="ccd")
        with pytest.raises(ValueError):
            MFRecommender(epochs=0)

    def test_unfitted_raises(self):
        rec = MFRecommender()
        with pytest.raises(RuntimeError):
            rec.predict(np.array([0]), np.array([0]))
        with pytest.raises(RuntimeError):
            rec.recommend(0)
        with pytest.raises(RuntimeError):
            _ = rec.simulated_seconds
        with pytest.raises(RuntimeError):
            _ = rec.algorithm_used


class TestInputValidation:
    def fit_args(self, users, items, ratings):
        return (
            np.asarray(users),
            np.asarray(items),
            np.asarray(ratings, dtype=np.float64),
        )

    def test_duplicate_pairs_rejected_with_indices(self):
        users = [0, 1, 0, 2, 1]
        items = [5, 6, 5, 7, 6]  # (0,5) at 0&2, (1,6) at 1&4
        with pytest.raises(InvalidRatingsError, match="duplicate") as exc:
            MFRecommender(epochs=1).fit(*self.fit_args(users, items, [1] * 5))
        assert exc.value.indices == (2, 4)
        assert "[2, 4" in str(exc.value)

    def test_duplicates_are_also_a_value_error(self):
        # Callers catching plain ValueError keep working.
        with pytest.raises(ValueError):
            MFRecommender(epochs=1).fit(
                *self.fit_args([0, 0], [1, 1], [1.0, 2.0])
            )

    def test_nan_and_inf_ratings_rejected_with_indices(self):
        ratings = [1.0, np.nan, 2.0, np.inf]
        with pytest.raises(InvalidRatingsError, match="non-finite") as exc:
            MFRecommender(epochs=1).fit(
                *self.fit_args([0, 1, 2, 3], [0, 1, 2, 3], ratings)
            )
        assert exc.value.indices == (1, 3)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            MFRecommender(epochs=1).fit(
                *self.fit_args([0, 1], [0, 1, 2], [1.0, 2.0])
            )

    def test_long_index_lists_are_previewed(self):
        n = 40
        users = list(range(n)) * 2
        items = [0] * (2 * n)
        with pytest.raises(InvalidRatingsError) as exc:
            MFRecommender(epochs=1).fit(
                *self.fit_args(users, items, [1.0] * (2 * n))
            )
        assert len(exc.value.indices) == n
        assert f"({n} total)" in str(exc.value)

    def test_predict_unknown_ids_carry_offenders(self, triplets):
        (tu, ti, tr), _, _ = triplets
        rec = MFRecommender(factors=8, algorithm="als", epochs=2).fit(
            tu, ti, tr, num_users=500, num_items=200
        )
        with pytest.raises(UnknownIdError) as exc:
            rec.predict(np.array([0, 9999, 1]), np.array([0, 0, 4444]))
        assert exc.value.indices == (1, 2)
        assert isinstance(exc.value, IndexError)
