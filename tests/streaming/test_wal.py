"""RatingsWAL: durability, torn-tail recovery, rotation, truncation."""

import os

import pytest

from repro.streaming.wal import RatingsWAL, WalError, WalRecord


def append_many(wal, count, start=0):
    for i in range(start, start + count):
        wal.append(user=i % 5, item=i % 7, rating=1.0 + (i % 4))


class TestAppendReplay:
    def test_append_returns_consecutive_seqs(self, tmp_path):
        with RatingsWAL(tmp_path) as wal:
            assert [wal.append(0, 1, 2.0), wal.append(1, 2, 3.0)] == [0, 1]
            assert wal.last_seq == 1

    def test_replay_round_trips_records(self, tmp_path):
        with RatingsWAL(tmp_path) as wal:
            wal.append(3, 4, 2.5)
            wal.append_barrier()
            wal.append(1, 0, 5.0)
            records = wal.replay()
        assert [r.kind for r in records] == ["rating", "barrier", "rating"]
        assert records[0] == WalRecord(seq=0, kind="rating", user=3, item=4, rating=2.5)
        assert records[2].seq == 2 and records[2].rating == 5.0

    def test_reopen_resumes_sequence(self, tmp_path):
        with RatingsWAL(tmp_path) as wal:
            append_many(wal, 3)
        with RatingsWAL(tmp_path) as wal:
            assert wal.last_seq == 2
            assert wal.append(0, 0, 1.0) == 3
            assert len(wal.replay()) == 4

    def test_records_after_filters_strictly(self, tmp_path):
        with RatingsWAL(tmp_path) as wal:
            append_many(wal, 4)
            assert [r.seq for r in wal.records_after(1)] == [2, 3]


class TestRotation:
    def test_segments_rotate_at_threshold(self, tmp_path):
        with RatingsWAL(tmp_path, segment_records=3) as wal:
            append_many(wal, 8)
        names = sorted(n for n in os.listdir(tmp_path) if n.endswith(".log"))
        assert names == ["wal-000000.log", "wal-000001.log", "wal-000002.log"]
        with RatingsWAL(tmp_path, segment_records=3) as wal:
            assert [r.seq for r in wal.replay()] == list(range(8))

    def test_truncate_through_deletes_covered_segments_only(self, tmp_path):
        wal = RatingsWAL(tmp_path, segment_records=2)
        append_many(wal, 6)  # segments: [0,1] [2,3] [4,5]
        deleted = wal.truncate_through(3)
        assert [os.path.basename(p) for p in deleted] == [
            "wal-000000.log", "wal-000001.log",
        ]
        assert [r.seq for r in wal.replay()] == [4, 5]
        # The active segment is never deleted, even when fully covered.
        assert wal.truncate_through(5) == []
        wal.close()


class TestTornTail:
    def test_reopen_truncates_torn_record(self, tmp_path):
        wal = RatingsWAL(tmp_path)
        append_many(wal, 3)
        wal.append_torn(9, 9, 9.0)
        wal.close()
        recovered = RatingsWAL(tmp_path)
        assert recovered.truncated_bytes > 0
        assert [r.seq for r in recovered.replay()] == [0, 1, 2]
        # The log is append-ready again and the torn record never acked.
        assert recovered.append(0, 0, 1.0) == 3
        recovered.close()

    def test_repair_tail_in_place(self, tmp_path):
        wal = RatingsWAL(tmp_path)
        append_many(wal, 2)
        wal.append_torn(9, 9, 9.0, keep_bytes=5)
        dropped = wal.repair_tail()
        assert dropped == 5
        assert wal.append(7, 7, 4.0) == 2
        assert [r.seq for r in wal.replay()] == [0, 1, 2]
        wal.close()

    def test_repair_tail_on_clean_log_is_noop(self, tmp_path):
        wal = RatingsWAL(tmp_path)
        append_many(wal, 2)
        assert wal.repair_tail() == 0
        wal.close()

    def test_crc_flip_at_tail_is_torn(self, tmp_path):
        wal = RatingsWAL(tmp_path)
        append_many(wal, 3)
        wal.close()
        path = tmp_path / "wal-000000.log"
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # corrupt the final record's checksum
        path.write_bytes(bytes(blob))
        recovered = RatingsWAL(tmp_path)
        assert [r.seq for r in recovered.replay()] == [0, 1]
        recovered.close()

    def test_torn_header_rewritten_fresh(self, tmp_path):
        wal = RatingsWAL(tmp_path)
        wal.close()
        path = tmp_path / "wal-000000.log"
        path.write_bytes(path.read_bytes()[:3])  # crash mid-header
        recovered = RatingsWAL(tmp_path)
        assert recovered.replay() == []
        assert recovered.append(1, 1, 1.0) == 0
        recovered.close()


class TestCorruption:
    def test_interior_corruption_raises(self, tmp_path):
        wal = RatingsWAL(tmp_path, segment_records=2)
        append_many(wal, 4)  # two segments; first is non-final
        wal.close()
        path = tmp_path / "wal-000000.log"
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(WalError, match="non-final"):
            RatingsWAL(tmp_path, segment_records=2)

    def test_sequence_gap_raises(self, tmp_path):
        wal = RatingsWAL(tmp_path, segment_records=2)
        append_many(wal, 4)
        wal.close()
        os.unlink(tmp_path / "wal-000000.log")  # drops seqs 0-1
        with pytest.raises(WalError, match="sequence gap"):
            RatingsWAL(tmp_path, segment_records=2)

    def test_closed_wal_refuses_appends(self, tmp_path):
        wal = RatingsWAL(tmp_path)
        wal.close()
        with pytest.raises(WalError, match="closed"):
            wal.append(0, 0, 1.0)

    def test_segment_records_validated(self, tmp_path):
        with pytest.raises(ValueError, match="segment_records"):
            RatingsWAL(tmp_path, segment_records=0)
