"""Streaming ingestion: WAL, delta checkpoints, online fold-in."""
