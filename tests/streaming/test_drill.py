"""The streaming-ingestion chaos drill end to end (small budgets)."""

from repro.streaming.drill import INGEST_DRILL_RATES, run_ingest_drill


class TestIngestDrill:
    def test_smoke_mode_passes_every_check(self):
        report = run_ingest_drill(seed=0, events=60, chaos=False)
        assert report["ok"], report["checks"]
        assert report["mode"] == "smoke"
        assert report["fault_plan"] is None
        assert report["kill_replay"]["bit_identical"]
        assert report["kill_replay"]["compaction_crossed"]
        assert report["deltas_published"] >= 1

    def test_chaos_mode_accounts_every_fault(self):
        report = run_ingest_drill(seed=0, events=60, chaos=True)
        assert report["ok"], report["checks"]
        assert report["mode"] == "chaos"
        assert report["missing_faults"] == []
        assert report["unexpected_faults"] == []
        assert report["read_your_writes_violations"] == []
        assert report["availability"] >= report["availability_floor"]
        checks = report["checks"]
        assert checks["replay_bit_identical"]
        assert checks["clean_rows_bit_identical"]
        assert checks["serving_matches_ingest"]
        assert checks["index_current"]

    def test_reports_are_deterministic_per_seed(self):
        a = run_ingest_drill(seed=3, events=40, chaos=True)
        b = run_ingest_drill(seed=3, events=40, chaos=True)
        assert a["ingest"]["digest"] == b["ingest"]["digest"]
        assert a["expected_faults"] == b["expected_faults"]

    def test_rate_table_covers_ingest_kinds(self):
        assert {"wal_torn_rate", "foldin_nan_rate", "delta_apply_rate"} <= set(
            INGEST_DRILL_RATES
        )
