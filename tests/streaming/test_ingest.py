"""IngestEngine: fold-in contracts, clean-row bit-identity, kill-replay."""

import numpy as np
import pytest

from repro.core.config import CGConfig
from repro.data.sparse import RatingMatrix
from repro.serving.health import ServingHealth
from repro.streaming import IngestConfig, IngestEngine
from repro.streaming.delta import list_deltas


def make_corpus(m=12, n=9, f=4, nnz=60, seed=0):
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, m, size=nnz)
    cols = rng.integers(0, n, size=nnz)
    vals = rng.uniform(1.0, 5.0, size=nnz).astype(np.float32)
    ratings = RatingMatrix.from_coo(rows, cols, vals, m=m, n=n)
    x = rng.standard_normal((m, f)).astype(np.float32)
    theta = rng.standard_normal((n, f)).astype(np.float32)
    return ratings, x, theta


def make_engine(directory, seed=0, **cfg_kwargs):
    ratings, x, theta = make_corpus(seed=seed)
    cfg_kwargs.setdefault("cg", CGConfig(max_iters=8))
    engine = IngestEngine(
        x, theta, ratings, config=IngestConfig(**cfg_kwargs), directory=directory
    )
    return engine, ratings, x, theta


def stream_ops(count, seed=0, m=12, n=9):
    rng = np.random.default_rng(seed)
    return [
        (int(rng.integers(0, m)), int(rng.integers(0, n)),
         float(rng.uniform(1.0, 5.0)))
        for _ in range(count)
    ]


class TestIngestAck:
    def test_ack_is_durable_and_sequential(self, tmp_path):
        engine, *_ = make_engine(tmp_path)
        assert engine.ingest(0, 1, 4.0) == 0
        assert engine.ingest(2, 3, 2.0) == 1
        assert engine.pending_count == 2
        assert engine.pending_users() == {0, 2}
        kinds = [r.kind for r in engine.wal.replay()]
        assert kinds == ["rating", "rating"]
        engine.close()

    def test_out_of_range_rejected(self, tmp_path):
        engine, *_ = make_engine(tmp_path)
        with pytest.raises(ValueError, match="user"):
            engine.ingest(99, 0, 1.0)
        with pytest.raises(ValueError, match="item"):
            engine.ingest(0, 99, 1.0)
        engine.close()

    def test_fresh_directory_guard(self, tmp_path):
        engine, ratings, x, theta = make_engine(tmp_path)
        engine.close()
        with pytest.raises(ValueError, match="already holds a stream"):
            IngestEngine(x, theta, ratings, directory=tmp_path)


class TestFoldIn:
    def test_clean_rows_bit_identical(self, tmp_path):
        engine, *_ = make_engine(tmp_path)
        x_before = engine.x.copy()
        theta_before = engine.theta.copy()
        engine.ingest(3, 2, 5.0)
        engine.ingest(3, 7, 1.0)
        result = engine.apply()
        assert not result.noop
        assert set(result.users.tolist()) == {3}
        assert set(result.items.tolist()) == {2, 7}
        clean_users = np.setdiff1d(np.arange(engine.m), result.users)
        clean_items = np.setdiff1d(np.arange(engine.n), result.items)
        assert engine.x[clean_users].tobytes() == x_before[clean_users].tobytes()
        assert (
            engine.theta[clean_items].tobytes()
            == theta_before[clean_items].tobytes()
        )
        engine.close()

    def test_foldin_moves_prediction_toward_rating(self, tmp_path):
        engine, *_ = make_engine(tmp_path)
        user, item, rating = 5, 4, 5.0
        before = float(engine.x[user] @ engine.theta[item])
        engine.ingest(user, item, rating)
        engine.apply()
        after = float(engine.x[user] @ engine.theta[item])
        assert abs(after - rating) < abs(before - rating)
        engine.close()

    def test_apply_with_nothing_pending_is_noop(self, tmp_path):
        engine, *_ = make_engine(tmp_path)
        result = engine.apply()
        assert result.noop and engine.applies == 0
        assert list_deltas(tmp_path) == []
        engine.close()

    def test_implicit_foldin_finite_and_scoped(self, tmp_path):
        engine, *_ = make_engine(tmp_path, alpha=8.0)
        x_before = engine.x.copy()
        engine.ingest(1, 1, 3.0)
        result = engine.apply()
        assert np.all(np.isfinite(engine.x)) and np.all(np.isfinite(engine.theta))
        clean = np.setdiff1d(np.arange(engine.m), result.users)
        assert engine.x[clean].tobytes() == x_before[clean].tobytes()
        engine.close()

    def test_deltas_compact_at_cadence(self, tmp_path):
        engine, *_ = make_engine(tmp_path, compact_every=2)
        for i, (u, v, r) in enumerate(stream_ops(6, seed=3)):
            engine.ingest(u, v, r)
            if i % 2 == 1:
                engine.apply()
        assert engine.applies == 3 and engine.compactions == 1
        # One delta since the compaction; the chain before it collapsed.
        assert len(list_deltas(tmp_path)) == 1
        engine.close()


class TestChaosHooks:
    def test_torn_append_repairs_then_acks(self, tmp_path):
        engine, *_ = make_engine(tmp_path)
        engine.ingest(0, 0, 2.0)
        engine.tear_next_append = True
        health = ServingHealth()
        seq = engine.ingest(1, 1, 3.0, health=health, tick=4)
        assert seq == 1 and engine.torn_writes_repaired == 1
        kinds = [e.kind for e in health.events]
        assert kinds == ["wal.recovered", "ingest.acked"]
        assert [r.seq for r in engine.wal.replay()] == [0, 1]
        engine.close()

    def test_poisoned_foldin_repaired_before_install(self, tmp_path):
        engine, *_ = make_engine(tmp_path)
        engine.ingest(2, 2, 4.0)
        engine.poison_next_foldin = True
        result = engine.apply()
        assert result.foldin_repairs >= 1
        assert engine.foldin_repairs >= 1
        assert np.all(np.isfinite(engine.x)) and np.all(np.isfinite(engine.theta))
        engine.close()


class TestKillReplay:
    def run_ops(self, engine, ops, start, stop, apply_every=3):
        for i in range(start, stop):
            u, v, r = ops[i]
            engine.ingest(u, v, r)
            if (i + 1) % apply_every == 0:
                engine.apply()
        if stop == len(ops):
            engine.apply()

    def test_resume_is_bit_identical(self, tmp_path):
        ops = stream_ops(14, seed=7)
        kill_at = 8

        full, ratings, *_ = make_engine(tmp_path / "full", compact_every=2)
        self.run_ops(full, ops, 0, len(ops))

        killed, *_ = make_engine(tmp_path / "killed", compact_every=2)
        self.run_ops(killed, ops, 0, kill_at)
        killed.wal.append_torn(0, 0, 3.0)  # power loss mid-append
        del killed

        resumed = IngestEngine.resume(
            tmp_path / "killed",
            ratings,
            config=IngestConfig(compact_every=2, cg=CGConfig(max_iters=8)),
        )
        assert resumed.wal.truncated_bytes > 0
        self.run_ops(resumed, ops, kill_at, len(ops))

        assert resumed.digest == full.digest
        assert resumed.x.tobytes() == full.x.tobytes()
        assert resumed.theta.tobytes() == full.theta.tobytes()
        full.close()
        resumed.close()

    def test_resume_of_quiescent_stream_matches(self, tmp_path):
        ops = stream_ops(6, seed=9)
        engine, ratings, *_ = make_engine(tmp_path, compact_every=3)
        self.run_ops(engine, ops, 0, len(ops))
        digest = engine.digest
        engine.close()
        resumed = IngestEngine.resume(
            tmp_path, ratings, config=IngestConfig(compact_every=3, cg=CGConfig(max_iters=8))
        )
        assert resumed.digest == digest and resumed.pending_count == 0
        resumed.close()

    def test_stats_snapshot_is_json_ready(self, tmp_path):
        import json

        engine, *_ = make_engine(tmp_path)
        engine.ingest(0, 0, 1.0)
        engine.apply()
        stats = engine.stats()
        assert json.loads(json.dumps(stats)) == stats
        assert stats["applies"] == 1 and stats["pending"] == 0
        engine.close()
