"""Delta checkpoints: digest chains, compaction, crash-safe resume."""

import os

import numpy as np
import pytest

from repro.resilience.checkpoint import Checkpoint, save_checkpoint
from repro.streaming.delta import (
    DeltaCheckpoint,
    DeltaError,
    compact,
    list_corpus_snapshots,
    list_deltas,
    load_delta,
    resume_state,
    save_delta,
    state_digest,
)


def make_base(directory, m=6, n=5, f=3, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((m, f)).astype(np.float32)
    theta = rng.standard_normal((n, f)).astype(np.float32)
    save_checkpoint(
        directory,
        Checkpoint(epoch=0, x=x, theta=theta, extra={"applied_seq": -1}),
    )
    return x, theta


def fold_rows(x, theta, users, items, seed):
    """One synthetic fold-in: bump the named rows deterministically."""
    rng = np.random.default_rng(seed)
    user_rows = (x[users] + rng.standard_normal((len(users), x.shape[1]))).astype(
        np.float32
    )
    item_rows = (
        theta[items] + rng.standard_normal((len(items), theta.shape[1]))
    ).astype(np.float32)
    x[users] = user_rows
    theta[items] = item_rows
    return user_rows, item_rows


def chain_delta(directory, x, theta, ordinal, seq, users, items, parent):
    user_rows, item_rows = fold_rows(x, theta, users, items, seed=ordinal)
    delta = DeltaCheckpoint(
        ordinal=ordinal,
        parent_digest=parent,
        result_digest=state_digest(x, theta),
        applied_seq=seq,
        users=np.asarray(users, dtype=np.int64),
        user_rows=user_rows,
        items=np.asarray(items, dtype=np.int64),
        item_rows=item_rows,
    )
    save_delta(directory, delta)
    return delta.result_digest


class TestDeltaArchive:
    def test_save_load_round_trip(self, tmp_path):
        delta = DeltaCheckpoint(
            ordinal=3,
            parent_digest="p" * 64,
            result_digest="r" * 64,
            applied_seq=17,
            users=np.array([1, 4]),
            user_rows=np.ones((2, 3), dtype=np.float32),
            items=np.array([0]),
            item_rows=np.full((1, 3), 2.0, dtype=np.float32),
        )
        path = save_delta(tmp_path, delta)
        loaded = load_delta(path)
        assert loaded.ordinal == 3 and loaded.applied_seq == 17
        np.testing.assert_array_equal(loaded.users, delta.users)
        np.testing.assert_array_equal(loaded.item_rows, delta.item_rows)

    def test_row_shape_mismatch_rejected(self):
        with pytest.raises(DeltaError, match="one row per user"):
            DeltaCheckpoint(
                ordinal=1,
                parent_digest="p",
                result_digest="r",
                applied_seq=0,
                users=np.array([1, 2]),
                user_rows=np.ones((1, 3), dtype=np.float32),
            )

    def test_corrupt_delta_rejected(self, tmp_path):
        delta = DeltaCheckpoint(
            ordinal=1, parent_digest="p", result_digest="r", applied_seq=0
        )
        path = save_delta(tmp_path, delta)
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[: len(blob) // 2])
        with pytest.raises(DeltaError, match="corrupt|truncated"):
            load_delta(path)

    def test_list_deltas_sorted_and_foreign_ignored(self, tmp_path):
        for ordinal in (5, 2):
            save_delta(
                tmp_path,
                DeltaCheckpoint(
                    ordinal=ordinal, parent_digest="p", result_digest="r", applied_seq=0
                ),
            )
        (tmp_path / "ckpt-000001.npz").write_bytes(b"full checkpoint, not a delta")
        (tmp_path / "notes.txt").write_text("hi")
        names = [os.path.basename(p) for p in list_deltas(tmp_path)]
        assert names == ["ckpt-000002.delta.npz", "ckpt-000005.delta.npz"]


class TestResume:
    def test_base_plus_chain_replays_bit_identically(self, tmp_path):
        x, theta = make_base(tmp_path)
        digest = state_digest(x, theta)
        digest = chain_delta(tmp_path, x, theta, 1, 4, [0, 2], [1], digest)
        digest = chain_delta(tmp_path, x, theta, 2, 9, [3], [0, 4], digest)
        state = resume_state(tmp_path)
        assert state.digest == digest
        assert state.applied_seq == 9 and state.ordinal == 2
        assert state.deltas_applied == 2
        assert state.x.tobytes() == x.tobytes()
        assert state.theta.tobytes() == theta.tobytes()

    def test_broken_chain_detected(self, tmp_path):
        x, theta = make_base(tmp_path)
        digest = state_digest(x, theta)
        chain_delta(tmp_path, x, theta, 1, 4, [0], [1], digest)
        chain_delta(tmp_path, x, theta, 2, 9, [3], [0], "f" * 64)  # bad parent
        with pytest.raises(DeltaError, match="does not chain"):
            resume_state(tmp_path)

    def test_lying_result_digest_detected(self, tmp_path):
        x, theta = make_base(tmp_path)
        digest = state_digest(x, theta)
        user_rows, item_rows = fold_rows(x, theta, [0], [1], seed=1)
        save_delta(
            tmp_path,
            DeltaCheckpoint(
                ordinal=1,
                parent_digest=digest,
                result_digest="f" * 64,  # claims a state it does not produce
                applied_seq=4,
                users=np.array([0]),
                user_rows=user_rows,
                items=np.array([1]),
                item_rows=item_rows,
            ),
        )
        with pytest.raises(DeltaError, match="digest mismatch"):
            resume_state(tmp_path)

    def test_no_base_checkpoint_raises(self, tmp_path):
        with pytest.raises(DeltaError, match="no base checkpoint"):
            resume_state(tmp_path)


class TestCompaction:
    def test_compact_collapses_chain_and_prunes(self, tmp_path):
        x, theta = make_base(tmp_path)
        digest = state_digest(x, theta)
        digest = chain_delta(tmp_path, x, theta, 1, 3, [0], [1], digest)
        digest = chain_delta(tmp_path, x, theta, 2, 7, [1], [2], digest)
        compact(
            tmp_path,
            ordinal=2,
            x=x,
            theta=theta,
            applied_seq=7,
            corpus_users=np.array([0, 1]),
            corpus_items=np.array([1, 2]),
            corpus_ratings=np.array([4.0, 2.0], dtype=np.float32),
        )
        assert list_deltas(tmp_path) == []
        assert len(list_corpus_snapshots(tmp_path)) == 1
        state = resume_state(tmp_path)
        assert state.digest == digest
        assert state.applied_seq == 7 and state.corpus_seq == 7
        np.testing.assert_array_equal(state.corpus_users, [0, 1])
        np.testing.assert_array_equal(state.corpus_ratings, [4.0, 2.0])

    def test_deltas_after_compaction_chain_off_new_base(self, tmp_path):
        x, theta = make_base(tmp_path)
        digest = state_digest(x, theta)
        digest = chain_delta(tmp_path, x, theta, 1, 3, [0], [1], digest)
        compact(
            tmp_path,
            ordinal=1,
            x=x,
            theta=theta,
            applied_seq=3,
            corpus_users=np.array([0]),
            corpus_items=np.array([1]),
            corpus_ratings=np.array([4.0], dtype=np.float32),
        )
        digest = chain_delta(tmp_path, x, theta, 2, 8, [2], [0], digest)
        state = resume_state(tmp_path)
        assert state.digest == digest and state.deltas_applied == 1
        assert state.x.tobytes() == x.tobytes()

    def test_stale_pre_compaction_delta_is_skipped(self, tmp_path):
        # A crash can leave a delta whose ordinal the compacted base
        # already covers; resume must skip it, not double-apply.
        x, theta = make_base(tmp_path)
        digest = state_digest(x, theta)
        digest = chain_delta(tmp_path, x, theta, 1, 3, [0], [1], digest)
        stale = list_deltas(tmp_path)[0]
        blob = open(stale, "rb").read()
        compact(
            tmp_path,
            ordinal=1,
            x=x,
            theta=theta,
            applied_seq=3,
            corpus_users=np.empty(0, dtype=np.int64),
            corpus_items=np.empty(0, dtype=np.int64),
            corpus_ratings=np.empty(0, dtype=np.float32),
        )
        open(stale, "wb").write(blob)  # resurrect the pre-compaction leftover
        state = resume_state(tmp_path)
        assert state.deltas_applied == 0 and state.digest == digest
