"""Tests for SGD numerics, blocking and schedules."""

import numpy as np
import pytest

from repro.data import SyntheticConfig, generate_ratings
from repro.metrics import rmse
from repro.sgd import (
    BoldDriver,
    FixedRate,
    InverseTimeDecay,
    blocked_epoch,
    build_grid,
    coo_arrays,
    diagonal_schedule,
    hogwild_epoch,
    sgd_batch_update,
)


@pytest.fixture(scope="module")
def data():
    return generate_ratings(SyntheticConfig(m=400, n=150, nnz=8000, seed=5))


def init_factors(m, n, f=12, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.normal(0, 0.1, (m, f)).astype(np.float32),
        rng.normal(0, 0.1, (n, f)).astype(np.float32),
    )


class TestBatchUpdate:
    def test_single_sample_matches_formula(self):
        x = np.array([[1.0, 0.0]], dtype=np.float32)
        theta = np.array([[0.5, 0.5]], dtype=np.float32)
        r, lr, lam = 2.0, 0.1, 0.01
        e = r - 0.5
        expected_x = x[0] + lr * (e * theta[0] - lam * x[0])
        expected_t = theta[0] + lr * (e * x[0] - lam * theta[0])
        sgd_batch_update(
            x, theta, np.array([0]), np.array([0]), np.array([r], dtype=np.float32),
            lr, lam,
        )
        np.testing.assert_allclose(x[0], expected_x, rtol=1e-6)
        np.testing.assert_allclose(theta[0], expected_t, rtol=1e-6)

    def test_duplicate_indices_averaged(self):
        """Two same-user samples in one batch contribute their MEAN
        gradient (the stability rule for batch-emulated Hogwild)."""
        x = np.zeros((1, 2), dtype=np.float32)
        theta = np.ones((2, 2), dtype=np.float32)
        sgd_batch_update(
            x, theta, np.array([0, 0]), np.array([0, 1]),
            np.array([1.0, 1.0], dtype=np.float32), 0.1, 0.0,
        )
        # Each sample's x-gradient is 0.1*θ = [0.1, 0.1]; averaged -> 0.1.
        np.testing.assert_allclose(x[0], 0.1 * np.ones(2), rtol=1e-5)
        # θ rows are distinct within the batch: full updates land.
        np.testing.assert_allclose(theta[0], np.ones(2), rtol=1e-5)  # x was 0

    def test_returns_sse(self):
        x = np.zeros((1, 2), dtype=np.float32)
        theta = np.zeros((1, 2), dtype=np.float32)
        sse = sgd_batch_update(
            x, theta, np.array([0]), np.array([0]), np.array([3.0], dtype=np.float32),
            0.1, 0.0,
        )
        assert sse == pytest.approx(9.0)

    def test_validation(self):
        x = np.zeros((1, 2), dtype=np.float32)
        with pytest.raises(ValueError):
            sgd_batch_update(x, x, np.array([0]), np.array([0]),
                             np.array([1.0]), lr=0.0, lam=0.0)
        with pytest.raises(ValueError):
            sgd_batch_update(x, x, np.array([0]), np.array([0]),
                             np.array([1.0]), lr=0.1, lam=-1.0)


class TestEpochs:
    def test_hogwild_reduces_rmse(self, data):
        x, theta = init_factors(data.m, data.n)
        rows, cols, vals = coo_arrays(data)
        rng = np.random.default_rng(0)
        before = rmse(x, theta, data)
        for _ in range(8):
            hogwild_epoch(x, theta, rows, cols, vals, 0.05, 0.02, rng, batch_size=512)
        assert rmse(x, theta, data) < before * 0.7

    def test_blocked_reduces_rmse(self, data):
        x, theta = init_factors(data.m, data.n)
        grid = build_grid(data, 4)
        rng = np.random.default_rng(0)
        before = rmse(x, theta, data)
        for _ in range(8):
            blocked_epoch(x, theta, grid, 0.05, 0.02, rng, batch_size=512)
        assert rmse(x, theta, data) < before * 0.7

    def test_hogwild_returns_mse(self, data):
        x, theta = init_factors(data.m, data.n)
        rows, cols, vals = coo_arrays(data)
        mse = hogwild_epoch(x, theta, rows, cols, vals, 0.05, 0.02,
                            np.random.default_rng(0))
        assert 0 < mse < (data.row_val.max()) ** 2

    def test_empty_input(self):
        x, theta = init_factors(3, 3)
        got = hogwild_epoch(
            x, theta, np.array([], dtype=int), np.array([], dtype=int),
            np.array([], dtype=np.float32), 0.1, 0.0, np.random.default_rng(0),
        )
        assert got == 0.0

    def test_bad_batch_size(self, data):
        x, theta = init_factors(data.m, data.n)
        rows, cols, vals = coo_arrays(data)
        with pytest.raises(ValueError):
            hogwild_epoch(x, theta, rows, cols, vals, 0.1, 0.0,
                          np.random.default_rng(0), batch_size=0)


class TestBlocking:
    def test_grid_partitions_all_samples(self, data):
        grid = build_grid(data, 5)
        total = sum(len(grid.block(i, j)) for i in range(5) for j in range(5))
        assert total == data.nnz

    def test_blocks_are_disjoint_in_waves(self, data):
        grid = build_grid(data, 4)
        for wave in diagonal_schedule(4):
            rows_seen, cols_seen = set(), set()
            for i, j in wave:
                assert i not in rows_seen and j not in cols_seen
                rows_seen.add(i)
                cols_seen.add(j)

    def test_samples_respect_stripes(self, data):
        grid = build_grid(data, 4)
        for i in range(4):
            for j in range(4):
                sel = grid.block(i, j)
                if len(sel) == 0:
                    continue
                r, c = grid.rows[sel], grid.cols[sel]
                assert (r >= grid.row_bounds[i]).all()
                assert (r < grid.row_bounds[i + 1]).all()
                assert (c >= grid.col_bounds[j]).all()
                assert (c < grid.col_bounds[j + 1]).all()

    def test_nnz_balance(self, data):
        grid = build_grid(data, 4)
        row_sums = grid.block_nnz().sum(axis=1)
        assert row_sums.max() < 2.0 * row_sums.mean()

    def test_block_index_errors(self, data):
        grid = build_grid(data, 3)
        with pytest.raises(IndexError):
            grid.block(3, 0)

    def test_validation(self, data):
        with pytest.raises(ValueError):
            build_grid(data, 0)
        with pytest.raises(ValueError):
            diagonal_schedule(0)

    def test_schedule_covers_grid(self):
        waves = diagonal_schedule(4)
        cells = {cell for wave in waves for cell in wave}
        assert cells == {(i, j) for i in range(4) for j in range(4)}


class TestSchedules:
    def test_fixed(self):
        s = FixedRate(0.1)
        assert s.rate(0) == s.rate(100) == 0.1
        with pytest.raises(ValueError):
            FixedRate(0.0)

    def test_inverse_time(self):
        s = InverseTimeDecay(lr=0.1, decay=1.0)
        assert s.rate(0) == pytest.approx(0.1)
        assert s.rate(9) == pytest.approx(0.01)
        with pytest.raises(ValueError):
            s.rate(-1)
        with pytest.raises(ValueError):
            InverseTimeDecay(lr=-1)

    def test_bold_driver(self):
        s = BoldDriver(lr=0.1, grow=2.0, shrink=0.5)
        s.observe_loss(10.0)
        assert s.rate(0) == 0.1  # first observation: no change
        s.observe_loss(5.0)  # improved -> grow
        assert s.rate(1) == pytest.approx(0.2)
        s.observe_loss(6.0)  # worse -> shrink
        assert s.rate(2) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            BoldDriver(grow=0.5)
        with pytest.raises(ValueError):
            BoldDriver(shrink=1.5)
