"""Tests for the GPU SGD trainer and its cost model."""

import numpy as np
import pytest

from repro.data import WorkloadShape, load_surrogate
from repro.gpusim import MAXWELL_TITANX, PASCAL_P100
from repro.sgd import CuMFSGD, SGDConfig, gpu_sgd_epoch_seconds

NETFLIX = WorkloadShape(m=480_189, n=17_770, nnz=99_072_112, f=100)


@pytest.fixture(scope="module")
def small():
    split, spec = load_surrogate("netflix", scale=0.08, seed=3)
    return split, spec


class TestCostModel:
    def test_epoch_memory_bound_scale(self):
        t = gpu_sgd_epoch_seconds(MAXWELL_TITANX, NETFLIX)
        # O(Nz f) bytes at a few hundred GB/s: tenths of a second.
        assert 0.05 < t < 1.0

    def test_sgd_epoch_cheaper_than_als_epoch(self):
        """Paper §V-E: 'SGD runs faster in each iteration'."""
        from repro.core import ALSConfig, cg_iteration_spec, hermitian_spec, Precision
        from repro.gpusim import time_kernel

        sgd = gpu_sgd_epoch_seconds(MAXWELL_TITANX, NETFLIX)
        als = (
            time_kernel(
                MAXWELL_TITANX, hermitian_spec(MAXWELL_TITANX, NETFLIX, ALSConfig(f=100))
            ).seconds
            + 6
            * time_kernel(
                MAXWELL_TITANX,
                cg_iteration_spec(MAXWELL_TITANX, NETFLIX.m, 100, Precision.FP16),
            ).seconds
        )
        assert sgd < als

    def test_multi_gpu_speedup(self):
        t1 = gpu_sgd_epoch_seconds(PASCAL_P100, NETFLIX, num_gpus=1)
        t4 = gpu_sgd_epoch_seconds(PASCAL_P100, NETFLIX, num_gpus=4)
        assert 1.5 < t1 / t4 <= 4.0

    def test_validation(self):
        with pytest.raises(ValueError):
            gpu_sgd_epoch_seconds(MAXWELL_TITANX, NETFLIX, num_gpus=0)


class TestTrainer:
    def test_converges(self, small):
        split, _ = small
        model = CuMFSGD(SGDConfig(f=16, lam=0.05, lr=0.05))
        curve = model.fit(split.train, split.test, epochs=15)
        assert curve.final_rmse < curve.points[0].rmse
        assert curve.final_rmse < 1.1

    def test_needs_more_epochs_than_als(self, small):
        """Paper §V-E: SGD requires more iterations to converge."""
        from repro.core import ALSConfig, ALSModel

        split, _ = small
        als = ALSModel(ALSConfig(f=16, lam=0.05)).fit(
            split.train, split.test, epochs=12
        )
        sgd = CuMFSGD(SGDConfig(f=16, lam=0.05)).fit(
            split.train, split.test, epochs=12
        )
        target = als.best_rmse * 1.05
        als_ep = als.epochs_to_rmse(target)
        sgd_ep = sgd.epochs_to_rmse(target)
        assert als_ep is not None
        assert sgd_ep is None or sgd_ep > als_ep

    def test_early_stop(self, small):
        split, _ = small
        model = CuMFSGD(SGDConfig(f=16))
        curve = model.fit(split.train, split.test, epochs=60, target_rmse=1.2)
        assert curve.points[-1].rmse <= 1.2

    def test_clock_uses_sim_shape(self, small):
        split, spec = small
        model = CuMFSGD(SGDConfig(f=100), sim_shape=spec.paper)
        curve = model.fit(split.train, epochs=2)
        per_epoch = curve.total_seconds / 2
        assert per_epoch == pytest.approx(
            gpu_sgd_epoch_seconds(MAXWELL_TITANX, spec.paper), rel=1e-6
        )

    def test_validation(self, small):
        split, _ = small
        with pytest.raises(ValueError):
            CuMFSGD(SGDConfig(f=16)).fit(split.train, epochs=0)
        with pytest.raises(ValueError):
            CuMFSGD(SGDConfig(f=16)).fit(split.train, epochs=1, target_rmse=1.0)
        with pytest.raises(ValueError):
            CuMFSGD(num_gpus=0)
        with pytest.raises(ValueError):
            SGDConfig(lr=0.0)
