"""Tests for synthetic dataset generation."""

import numpy as np
import pytest

from repro.data import SyntheticConfig, generate_ratings, planted_factors


def small_cfg(**kw):
    base = dict(m=500, n=200, nnz=5000, true_rank=8, seed=7)
    base.update(kw)
    return SyntheticConfig(**base)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kw",
        [
            dict(m=0),
            dict(n=-1),
            dict(nnz=0),
            dict(nnz=500 * 200 + 1),
            dict(true_rank=0),
            dict(noise=-0.1),
            dict(rating_min=5.0, rating_max=5.0),
            dict(zipf_exponent=-1.0),
        ],
    )
    def test_rejects(self, kw):
        with pytest.raises(ValueError):
            small_cfg(**kw)


class TestGeneration:
    def test_shape_and_count(self):
        r = generate_ratings(small_cfg())
        assert (r.m, r.n) == (500, 200)
        assert r.nnz == 5000

    def test_no_duplicates(self):
        r = generate_ratings(small_cfg())
        rows = np.repeat(np.arange(r.m), r.row_counts())
        keys = rows * r.n + r.col_idx
        assert len(np.unique(keys)) == r.nnz

    def test_rating_range(self):
        r = generate_ratings(small_cfg(rating_min=1.0, rating_max=5.0))
        assert r.row_val.min() >= 1.0
        assert r.row_val.max() <= 5.0

    def test_yahoomusic_scale(self):
        r = generate_ratings(small_cfg(rating_min=1.0, rating_max=100.0))
        assert r.row_val.max() > 50.0  # actually uses the range

    def test_deterministic_by_seed(self):
        a = generate_ratings(small_cfg(seed=3))
        b = generate_ratings(small_cfg(seed=3))
        assert (a.to_scipy() != b.to_scipy()).nnz == 0

    def test_different_seeds_differ(self):
        a = generate_ratings(small_cfg(seed=3))
        b = generate_ratings(small_cfg(seed=4))
        assert (a.to_scipy() != b.to_scipy()).nnz > 0

    def test_zipf_skew(self):
        """Item degree distribution must be heavy-tailed at exponent>1."""
        r = generate_ratings(small_cfg(nnz=20_000, zipf_exponent=1.2))
        counts = np.sort(r.col_counts())[::-1]
        top10 = counts[:20].sum() / counts.sum()
        assert top10 > 0.3  # top 10% of items get >30% of ratings

    def test_uniform_when_exponent_zero(self):
        r = generate_ratings(small_cfg(nnz=20_000, zipf_exponent=0.0))
        counts = r.col_counts()
        assert counts.max() < 6 * counts.mean()

    def test_low_rank_signal_present(self):
        """Ratings must correlate with the planted model, else convergence
        experiments are meaningless."""
        cfg = small_cfg(nnz=20_000, noise=0.05)
        r = generate_ratings(cfg)
        rng = np.random.default_rng(cfg.seed)
        x, theta = planted_factors(cfg, rng)
        rows = np.repeat(np.arange(r.m), r.row_counts())
        raw = np.einsum("ij,ij->i", x[rows], theta[r.col_idx])
        corr = np.corrcoef(raw, r.row_val)[0, 1]
        assert corr > 0.8

    def test_nearly_dense_generation(self):
        r = generate_ratings(SyntheticConfig(m=30, n=20, nnz=550, seed=1))
        assert r.nnz >= 500  # best-effort near capacity

    def test_planted_factor_shapes(self):
        cfg = small_cfg()
        x, theta = planted_factors(cfg, np.random.default_rng(0))
        assert x.shape == (cfg.m, cfg.true_rank)
        assert theta.shape == (cfg.n, cfg.true_rank)
