"""Tests for the RatingMatrix container."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.data import RatingMatrix


@pytest.fixture
def tiny():
    #     items: 0    1    2
    # user 0:   5.0   -   3.0
    # user 1:    -   2.0   -
    # user 2:   1.0  4.0  2.5
    rows = [0, 0, 1, 2, 2, 2]
    cols = [0, 2, 1, 0, 1, 2]
    vals = [5.0, 3.0, 2.0, 1.0, 4.0, 2.5]
    return RatingMatrix.from_coo(rows, cols, vals)


class TestConstruction:
    def test_shape_inferred(self, tiny):
        assert (tiny.m, tiny.n, tiny.nnz) == (3, 3, 6)

    def test_explicit_shape(self):
        r = RatingMatrix.from_coo([0], [0], [1.0], m=10, n=20)
        assert (r.m, r.n) == (10, 20)

    def test_shape_too_small_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            RatingMatrix.from_coo([5], [0], [1.0], m=3, n=3)

    def test_negative_indices_rejected(self):
        with pytest.raises(ValueError):
            RatingMatrix.from_coo([-1], [0], [1.0])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            RatingMatrix.from_coo([0, 1], [0], [1.0])

    def test_duplicates_summed(self):
        r = RatingMatrix.from_coo([0, 0], [1, 1], [1.0, 2.0], m=1, n=2)
        assert r.nnz == 1
        _, vals = r.user_items(0)
        assert vals[0] == pytest.approx(3.0)

    def test_from_scipy_roundtrip(self, tiny):
        again = RatingMatrix.from_scipy(tiny.to_scipy())
        assert (tiny.to_scipy() != again.to_scipy()).nnz == 0

    def test_empty_matrix(self):
        r = RatingMatrix.from_scipy(sp.csr_matrix((4, 5)))
        assert r.nnz == 0
        assert r.density == 0.0
        r.validate()


class TestViews:
    def test_user_items(self, tiny):
        idx, vals = tiny.user_items(0)
        assert idx.tolist() == [0, 2]
        assert vals.tolist() == [5.0, 3.0]

    def test_item_users(self, tiny):
        idx, vals = tiny.item_users(1)
        assert idx.tolist() == [1, 2]
        assert vals.tolist() == [2.0, 4.0]

    def test_views_are_zero_copy(self, tiny):
        idx, vals = tiny.user_items(2)
        assert idx.base is not None  # a view, not a copy
        assert vals.base is not None
        assert np.shares_memory(idx, tiny.col_idx)
        assert np.shares_memory(vals, tiny.row_val)

    def test_out_of_range(self, tiny):
        with pytest.raises(IndexError):
            tiny.user_items(3)
        with pytest.raises(IndexError):
            tiny.item_users(-1)

    def test_counts(self, tiny):
        assert tiny.row_counts().tolist() == [2, 1, 3]
        assert tiny.col_counts().tolist() == [2, 2, 2]

    def test_csr_csc_consistency(self, tiny):
        dense_from_rows = tiny.to_scipy().toarray()
        dense_from_cols = np.zeros_like(dense_from_rows)
        for v in range(tiny.n):
            users, vals = tiny.item_users(v)
            dense_from_cols[users, v] = vals
        np.testing.assert_allclose(dense_from_rows, dense_from_cols)


class TestTranspose:
    def test_transpose_swaps(self, tiny):
        t = tiny.transpose()
        assert (t.m, t.n) == (tiny.n, tiny.m)
        idx, vals = t.user_items(1)  # item 1's users
        assert idx.tolist() == [1, 2]
        np.testing.assert_allclose(
            t.to_scipy().toarray(), tiny.to_scipy().toarray().T
        )

    def test_double_transpose_identity(self, tiny):
        tt = tiny.transpose().transpose()
        assert (tt.to_scipy() != tiny.to_scipy()).nnz == 0


class TestValidate:
    def test_valid(self, tiny):
        tiny.validate()

    def test_detects_corrupt_ptr(self, tiny):
        import dataclasses

        bad = dataclasses.replace(tiny, row_ptr=tiny.row_ptr[:-1])
        with pytest.raises(ValueError):
            bad.validate()

    def test_detects_bad_index(self, tiny):
        import dataclasses

        col = tiny.col_idx.copy()
        col[0] = 99
        bad = dataclasses.replace(tiny, col_idx=col)
        with pytest.raises(ValueError):
            bad.validate()

    def test_density(self, tiny):
        assert tiny.density == pytest.approx(6 / 9)
