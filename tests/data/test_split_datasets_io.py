"""Tests for splitting, the dataset registry and I/O."""

import numpy as np
import pytest

from repro.data import (
    DATASETS,
    RatingMatrix,
    SyntheticConfig,
    WorkloadShape,
    generate_ratings,
    get_dataset,
    load_npz,
    load_surrogate,
    load_triplets,
    save_npz,
    save_triplets,
    train_test_split,
)


@pytest.fixture(scope="module")
def ratings():
    return generate_ratings(SyntheticConfig(m=400, n=150, nnz=6000, seed=11))


class TestSplit:
    def test_partition_is_exact(self, ratings):
        s = train_test_split(ratings, 0.2, seed=1)
        assert s.train.nnz + s.test.nnz == ratings.nnz
        total = (s.train.to_scipy() + s.test.to_scipy()) - ratings.to_scipy()
        assert abs(total).max() < 1e-6

    def test_fraction_respected(self, ratings):
        s = train_test_split(ratings, 0.2, seed=1)
        frac = s.test.nnz / ratings.nnz
        assert 0.15 < frac < 0.25

    def test_min_train_per_row(self, ratings):
        s = train_test_split(ratings, 0.9, min_train_per_row=1, seed=2)
        counts = s.train.row_counts()
        active = ratings.row_counts() > 0
        assert (counts[active] >= 1).all()

    def test_shapes_preserved(self, ratings):
        s = train_test_split(ratings, 0.1)
        assert (s.train.m, s.train.n) == (ratings.m, ratings.n)
        assert (s.test.m, s.test.n) == (ratings.m, ratings.n)

    def test_deterministic(self, ratings):
        a = train_test_split(ratings, 0.1, seed=5)
        b = train_test_split(ratings, 0.1, seed=5)
        assert (a.test.to_scipy() != b.test.to_scipy()).nnz == 0

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 2.0])
    def test_bad_fraction(self, ratings, bad):
        with pytest.raises(ValueError):
            train_test_split(ratings, bad)


class TestRegistry:
    def test_paper_table2_netflix(self):
        spec = get_dataset("netflix")
        assert spec.paper.m == 480_189
        assert spec.paper.n == 17_770
        assert spec.paper.nnz == pytest.approx(99e6, rel=0.01)
        assert spec.paper.f == 100
        assert spec.lam == 0.05
        assert spec.target_rmse == 0.92

    def test_paper_table2_yahoomusic(self):
        spec = get_dataset("yahoomusic")
        assert spec.paper.m == 1_000_990
        assert spec.paper.n == 624_961
        assert spec.lam == 1.4
        assert spec.target_rmse == 22.0

    def test_paper_table2_hugewiki(self):
        spec = get_dataset("hugewiki")
        assert spec.paper.m == 50_082_603
        assert spec.paper.nnz == pytest.approx(3.1e9, rel=0.01)
        assert spec.target_rmse == 0.52

    def test_all_specs_have_surrogates(self):
        for spec in DATASETS.values():
            assert spec.surrogate.nnz > 0
            # Surrogate preserves the rating scale.
            assert spec.surrogate.rating_min == spec.rating_min
            assert spec.surrogate.rating_max == spec.rating_max

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            get_dataset("movielens")

    def test_load_surrogate_scaled(self):
        split, spec = load_surrogate("netflix", scale=0.05)
        assert split.train.m < spec.surrogate.m
        assert split.train.nnz + split.test.nnz <= spec.surrogate.nnz

    def test_load_surrogate_bad_scale(self):
        with pytest.raises(ValueError):
            load_surrogate("netflix", scale=0.0)

    def test_workload_shape(self):
        w = WorkloadShape(m=100, n=50, nnz=1000, f=10)
        assert w.rows_mean_nnz == 10.0
        assert w.transpose().m == 50
        with pytest.raises(ValueError):
            WorkloadShape(m=0, n=1, nnz=1, f=1)


class TestIO:
    def test_npz_roundtrip(self, ratings, tmp_path):
        p = tmp_path / "r.npz"
        save_npz(p, ratings)
        again = load_npz(p)
        assert (again.to_scipy() != ratings.to_scipy()).nnz == 0

    def test_triplets_roundtrip(self, ratings, tmp_path):
        p = tmp_path / "r.txt"
        save_triplets(p, ratings)
        again = load_triplets(p, m=ratings.m, n=ratings.n)
        np.testing.assert_allclose(
            again.to_scipy().toarray(), ratings.to_scipy().toarray(), rtol=1e-4
        )

    def test_triplets_bad_columns(self, tmp_path):
        p = tmp_path / "bad.txt"
        p.write_text("1 2\n3 4\n")
        with pytest.raises(ValueError):
            load_triplets(p)

    def test_triplets_empty(self, tmp_path):
        p = tmp_path / "empty.txt"
        p.write_text("")
        with pytest.raises(ValueError):
            load_triplets(p)
