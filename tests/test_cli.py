"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.dataset == "netflix"
        assert args.solver == "cg"
        assert args.precision == "fp16"

    def test_bad_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--dataset", "movielens"])

    def test_advise_required_args(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["advise"])


class TestCommands:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "Tesla K40" in out
        assert "Tesla P100" in out
        assert "tensor" in out  # V100 row

    def test_advise(self, capsys):
        rc = main(
            ["advise", "--users", "480189", "--items", "17770",
             "--ratings", "99072112", "--implicit"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "ALS" in out
        assert "implicit" in out

    def test_train_small(self, capsys):
        rc = main(
            ["train", "--scale", "0.05", "--factors", "8", "--epochs", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "test-RMSE" in out
        assert "netflix" in out

    def test_train_multi_gpu(self, capsys):
        rc = main(
            ["train", "--scale", "0.05", "--factors", "8", "--epochs", "1",
             "--gpus", "2", "--device", "pascal"]
        )
        assert rc == 0
        assert "2x Tesla P100" in capsys.readouterr().out

    def test_tune(self, capsys):
        rc = main(["tune", "--device", "maxwell"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "regs/thread" in out


class TestAnalyze:
    def test_defaults(self):
        args = build_parser().parse_args(["analyze"])
        assert args.device == "maxwell"
        assert args.read_scheme == "noncoal-l1"
        assert args.fs == 6
        assert args.format == "text"

    def test_json_output_is_structured(self, capsys):
        """ISSUE acceptance: `repro analyze --device maxwell-titanx
        --workload netflix --format json` emits structured diagnostics."""
        rc = main(["analyze", "--device", "maxwell-titanx",
                   "--workload", "netflix", "--format", "json"])
        assert rc == 0  # warnings only: the tuned config is structural
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.analysis/v1"
        assert payload["count"] >= 1
        assert any(d["rule"] == "KL002" for d in payload["diagnostics"])

    def test_bad_config_hits_three_distinct_rules(self, capsys):
        """ISSUE acceptance: 96 threads + coalesced reads at f=100."""
        rc = main(["analyze", "--read-scheme", "coalesced",
                   "--threads-per-block", "96", "--format", "json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert len({d["rule"] for d in payload["diagnostics"]}) >= 3

    def test_strict_fails_on_warnings(self, capsys):
        rc = main(["analyze", "--strict"])
        assert rc == 1
        assert "KL002" in capsys.readouterr().out

    def test_use_l1_surfaces_figure5(self, capsys):
        rc = main(["analyze", "--use-l1"])
        assert rc == 0
        assert "KL007" in capsys.readouterr().out

    def test_self_lint_is_clean(self, capsys):
        """ISSUE acceptance: the shipped tree passes its own AST lint."""
        rc = main(["analyze", "--self"])
        assert rc == 0
        assert "no findings" in capsys.readouterr().out

    def test_self_lint_flags_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "mod.py"
        bad.write_text("def f():\n    import math\n    return math.pi\n")
        rc = main(["analyze", "--self", "--path", str(tmp_path)])
        assert rc == 1
        assert "AL004" in capsys.readouterr().out


class TestServe:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.seed == 0
        assert args.requests == 200
        assert not args.smoke
        assert not args.chaos
        assert args.index is True
        assert args.nprobe is None

    def test_parser_index_flags(self):
        assert build_parser().parse_args(["serve", "--no-index"]).index is (
            False
        )
        assert build_parser().parse_args(["serve", "--nprobe", "9"]).nprobe == 9

    def test_smoke_is_green(self, capsys):
        rc = main(["serve", "--smoke", "--requests", "40"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "serve: ok" in out
        assert "fault-free smoke" in out
        assert "recall@10" in out

    def test_smoke_without_index(self, capsys):
        rc = main(["serve", "--smoke", "--requests", "40", "--no-index"])
        assert rc == 0
        assert "index disabled" in capsys.readouterr().out

    def test_nprobe_at_ncells_reports_exact_recall(self, tmp_path, capsys):
        report_path = tmp_path / "serve-report.json"
        rc = main(
            ["serve", "--smoke", "--requests", "30", "--nprobe", "99",
             "--output", str(report_path)]
        )
        assert rc == 0
        report = json.loads(report_path.read_text())
        retrieval = report["retrieval"]
        assert retrieval["nprobe"] == retrieval["ncells"]
        assert retrieval["recall_at_k"] == 1.0

    def test_chaos_drill_writes_report(self, tmp_path, capsys):
        report_path = tmp_path / "serve-report.json"
        rc = main(
            ["serve", "--requests", "60", "--seed", "1",
             "--output", str(report_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "injected and accounted" in out
        report = json.loads(report_path.read_text())
        assert report["ok"] is True
        assert report["mode"] == "chaos"
        assert report["accounting_violations"] == []
        assert report["availability"] >= report["availability_floor"]

    def test_workers_defaults_to_single_process(self):
        assert build_parser().parse_args(["serve"]).workers == 0
        assert build_parser().parse_args(
            ["serve", "--workers", "3"]
        ).workers == 3

    def test_fleet_smoke_is_green(self, capsys):
        rc = main(["serve", "--workers", "2", "--smoke", "--requests", "40"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "serve: ok" in out
        assert "2 worker(s)" in out
        assert "bit-identical" in out

    def test_fleet_chaos_drill_writes_report(self, tmp_path, capsys):
        report_path = tmp_path / "fleet-report.json"
        rc = main(
            ["serve", "--workers", "3", "--requests", "80", "--seed", "3",
             "--output", str(report_path)]
        )
        assert rc == 0
        assert "injected and accounted" in capsys.readouterr().out
        report = json.loads(report_path.read_text())
        assert report["ok"] is True
        assert report["mode"] == "fleet-chaos"
        assert report["workers"] == 3
        assert report["checks"]["equivalence_bit_identical"] is True
        assert report["accounting_violations"] == []
        assert report["availability"] >= report["availability_floor"]
        assert report["throughput"]["requests_per_s"] > 0

    def test_train_checkpoint_keep_flag(self, tmp_path, capsys):
        rc = main(
            ["train", "--scale", "0.05", "--factors", "8", "--epochs", "3",
             "--checkpoint-dir", str(tmp_path), "--checkpoint-keep", "1"]
        )
        assert rc == 0
        names = [p.name for p in tmp_path.iterdir()]
        assert names == ["ckpt-000003.npz"]
