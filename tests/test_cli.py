"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.dataset == "netflix"
        assert args.solver == "cg"
        assert args.precision == "fp16"

    def test_bad_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--dataset", "movielens"])

    def test_advise_required_args(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["advise"])


class TestCommands:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "Tesla K40" in out
        assert "Tesla P100" in out
        assert "tensor" in out  # V100 row

    def test_advise(self, capsys):
        rc = main(
            ["advise", "--users", "480189", "--items", "17770",
             "--ratings", "99072112", "--implicit"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "ALS" in out
        assert "implicit" in out

    def test_train_small(self, capsys):
        rc = main(
            ["train", "--scale", "0.05", "--factors", "8", "--epochs", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "test-RMSE" in out
        assert "netflix" in out

    def test_train_multi_gpu(self, capsys):
        rc = main(
            ["train", "--scale", "0.05", "--factors", "8", "--epochs", "1",
             "--gpus", "2", "--device", "pascal"]
        )
        assert rc == 0
        assert "2x Tesla P100" in capsys.readouterr().out

    def test_tune(self, capsys):
        rc = main(["tune", "--device", "maxwell"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "regs/thread" in out
