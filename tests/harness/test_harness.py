"""Tests for the table printers and the cheap experiment drivers."""

import pytest

from repro.data import WorkloadShape, get_dataset
from repro.harness import (
    fig1_ablation,
    fig4_coalescing,
    fig5_solver,
    fig7a_flops,
    fig7b_bandwidth,
    format_series,
    format_table,
    table1_complexity,
)


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table("T", ["a", "bb"], [[1, 2.5], [30, 0.001]])
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert len(lines) == 6

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table("T", ["a"], [[1, 2]])

    def test_float_formats(self):
        out = format_table("T", ["x"], [[123456.0], [0.00012], [1.5]])
        assert "1.23e+05" in out or "123000" in out or "1.23e+5" in out
        assert "0.00012" in out

    def test_series(self):
        s = format_series("lbl", [0.0, 1.0], [2.0, 1.0])
        assert s.startswith("lbl:")
        assert "(1.00, 1.0000)" in s

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("x", [1.0], [1.0, 2.0])


class TestDrivers:
    """Smoke + shape checks on the cost-model-only drivers."""

    def test_table1_rows(self):
        rows = table1_complexity(WorkloadShape(m=100, n=50, nnz=1000, f=8))
        assert {r["algorithm"] for r in rows} == {"ALS", "SGD"}
        assert all(r["compute"] > 0 and r["memory"] > 0 for r in rows)

    def test_fig4_structure(self):
        r = fig4_coalescing(f=100)
        assert set(r) == {"update_x", "update_theta"}
        for side in r.values():
            assert set(side) == {"coalesced", "noncoal-l1", "noncoal-nol1"}
            for phases in side.values():
                assert phases["total"] == pytest.approx(
                    phases["load"] + phases["compute"] + phases["write"], rel=1e-6
                )

    def test_fig5_keys(self):
        r = fig5_solver(iterations=2)
        assert r["CG-FP16"] < r["CG-FP32"] < r["LU-FP32"]

    def test_fig5_scales_with_iterations(self):
        r1 = fig5_solver(iterations=1)
        r10 = fig5_solver(iterations=10)
        assert r10["LU-FP32"] == pytest.approx(10 * r1["LU-FP32"], rel=1e-6)

    def test_fig7a_rows(self):
        rows = fig7a_flops()
        assert [r["device"] for r in rows] == ["Kepler", "Maxwell", "Pascal"]
        assert all(0 < r["cumf_efficiency"] < 1 for r in rows)

    def test_fig7b_rows(self):
        rows = fig7b_bandwidth()
        assert all(r["cg_gbps"] > 0 and r["memcpy_gbps"] > 0 for r in rows)

    def test_fig1_monotone(self):
        r = fig1_ablation()
        vals = list(r.values())
        assert vals == sorted(vals, reverse=True)  # each stage helps

    def test_registry_paper_shapes_used(self):
        # The drivers must price at paper scale, not surrogate scale.
        shape = get_dataset("netflix").paper
        assert shape.nnz > 9e7
