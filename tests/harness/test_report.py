"""Smoke test for the EXPERIMENTS.md generator (tiny scales)."""

import pytest

from repro.harness.report import PAPER_TABLE4, generate_report


@pytest.mark.slow
def test_generate_report_tiny():
    text = generate_report(scale=0.05, hugewiki_scale=0.04)
    # Every section the paper has must be present.
    for heading in (
        "Table I",
        "Figure 4",
        "Figure 5",
        "Figure 6 + Table IV",
        "Figure 7a",
        "Figure 7b",
        "Figure 8",
        "V-F",
        "Figure 1",
    ):
        assert heading in text, heading
    # Paper reference numbers are embedded for side-by-side comparison.
    assert "3021" in text  # LIBMF Hugewiki seconds from Table IV
    assert "| Kepler |" in text or "Kepler" in text
    assert text.count("|") > 100  # plenty of markdown table content


def test_paper_table4_constants():
    assert PAPER_TABLE4["netflix"]["cuMFALS@P"] == 3.3
    assert PAPER_TABLE4["hugewiki"]["LIBMF"] == 3021
    assert set(PAPER_TABLE4) == {"netflix", "yahoomusic", "hugewiki"}
