"""Tests for the ASCII chart renderer."""

import pytest

from repro.harness import MARKERS, ascii_chart


def two_series():
    return {
        "a": ([1.0, 2.0, 3.0], [3.0, 2.0, 1.0]),
        "b": ([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]),
    }


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        out = ascii_chart(two_series(), width=40, height=10)
        assert "*" in out and "o" in out
        assert "* a" in out and "o b" in out

    def test_axis_labels(self):
        out = ascii_chart(two_series(), width=40, height=10)
        assert "3" in out  # ymax label
        assert "RMSE vs seconds" in out

    def test_dimensions(self):
        out = ascii_chart(two_series(), width=40, height=10)
        lines = out.splitlines()
        assert len(lines) == 10 + 3  # grid + axis + ticks + legend
        assert all(len(l) <= 40 + 12 for l in lines[:10])

    def test_log_x(self):
        out = ascii_chart(
            {"a": ([1, 10, 100], [1.0, 0.5, 0.2])}, width=40, height=8, log_x=True
        )
        assert "[log x]" in out
        assert "100" in out

    def test_extreme_corners_plotted(self):
        """Min/max points must land on the grid edges, not overflow."""
        out = ascii_chart({"a": ([0.0, 100.0], [0.0, 10.0])}, width=30, height=6)
        lines = out.splitlines()
        assert lines[0].rstrip().endswith("*")  # ymax at top-right
        assert "*" in lines[5]  # ymin at bottom

    def test_nan_points_dropped(self):
        out = ascii_chart(
            {"a": ([1.0, 2.0], [float("nan"), 1.0])}, width=30, height=6
        )
        grid = "\n".join(out.splitlines()[:6])  # exclude legend
        assert grid.count("*") == 1

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            ascii_chart({"a": ([1.0], [float("nan")])})

    def test_degenerate_ranges(self):
        # Single point: x and y ranges are zero; must not divide by zero.
        out = ascii_chart({"a": ([5.0], [2.0])}, width=20, height=5)
        assert "*" in out

    def test_too_many_series(self):
        series = {f"s{i}": ([1.0], [1.0]) for i in range(len(MARKERS) + 1)}
        with pytest.raises(ValueError, match="at most"):
            ascii_chart(series)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no series"):
            ascii_chart({})

    def test_too_small_rejected(self):
        with pytest.raises(ValueError, match="too small"):
            ascii_chart(two_series(), width=4, height=2)
