"""Shared test configuration: a global per-test timeout.

The resilience suite forks worker processes and SIGKILLs them on
purpose; a supervision bug could leave a test waiting on a pipe that
will never deliver.  Rather than depend on the pytest-timeout plugin,
an autouse fixture arms ``SIGALRM`` around every test — any test
exceeding the budget dies with a clear ``Failed`` instead of hanging
CI until the job-level timeout reaps it (the ``faulthandler_timeout``
ini setting additionally dumps all thread stacks well before that).

Override per run with ``REPRO_TEST_TIMEOUT`` (seconds, 0 disables).
"""

from __future__ import annotations

import os
import signal

import pytest

_DEFAULT_TIMEOUT = 300


@pytest.fixture(autouse=True)
def _global_test_timeout():
    timeout = int(os.environ.get("REPRO_TEST_TIMEOUT", str(_DEFAULT_TIMEOUT)))
    if timeout <= 0 or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _abort(signum, frame):
        pytest.fail(f"test exceeded the global {timeout}s timeout", pytrace=True)

    previous = signal.signal(signal.SIGALRM, _abort)
    signal.alarm(timeout)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
