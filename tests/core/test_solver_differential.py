"""Differential coverage: direct vs CG on ill-conditioned SPD systems.

Pytest-native slice of the ``repro verify`` oracles (see
docs/verification.md): the exact O(f³) paths, the truncated CG of paper
Solution 3, and the fused-vs-reference CG kernel backends (VF006) are
compared across condition numbers 1e2–1e8, parametrized over
f ∈ {10, 40, 100} and f_s ∈ {3, 5, f}.  Tolerances are the calibrated
Krylov bounds from ``repro.verify.oracles``, so a failure here and a
fuzz-campaign failure mean the same thing.
"""

import math

import numpy as np
import pytest

from repro.core import CGConfig, cg_solve_batched, cholesky_solve_batched, lu_solve_batched
from repro.core.config import Precision
from repro.verify.generators import SPDCase, build_spd_batch
from repro.verify.oracles import (
    CG_KRYLOV_C,
    EPS32,
    EPS64,
    EXACT_PAIR_C,
    FP16_COND_DOMAIN,
    RESIDUAL_SLACK,
    backend_pair_tolerance,
    check_backend_equivalence,
)

FACTORS = [10, 40, 100]
CONDS = [1e2, 1e4, 1e6, 1e8]


def _case(f, cond, fs=0, seed=1234):
    return SPDCase(
        batch=4,
        f=f,
        log10_cond=math.log10(cond),
        log10_scale=0.0,
        fs=fs,
        seed=seed,
    )


def _rel_err(x, ref):
    scale = max(float(np.max(np.abs(ref))), 1e-30)
    return float(np.max(np.abs(x.astype(np.float64) - ref)) / scale)


@pytest.mark.parametrize("f", FACTORS)
@pytest.mark.parametrize("cond", CONDS)
class TestExactVsCG:
    def test_exact_pair_agrees(self, f, cond):
        A, b, _ = build_spd_batch(_case(f, cond))
        x_lu = lu_solve_batched(A, b)
        x_ch = cholesky_solve_batched(A, b)
        assert np.isfinite(x_lu).all() and np.isfinite(x_ch).all()
        assert _rel_err(x_lu, x_ch) <= EXACT_PAIR_C * max(EPS32, cond * EPS64)

    def test_converged_cg_tracks_exact(self, f, cond):
        A, b, _ = build_spd_batch(_case(f, cond))
        ref = lu_solve_batched(A, b)
        res = cg_solve_batched(A, b, config=CGConfig(max_iters=2 * f, tol=0.0))
        assert np.isfinite(res.x).all()
        assert _rel_err(res.x, ref) <= min(1.0, CG_KRYLOV_C * cond * EPS32)


@pytest.mark.parametrize("f", FACTORS)
@pytest.mark.parametrize("fs_kind", [3, 5, "f"])
class TestTruncatedCG:
    """Paper Solution 3: truncation trades accuracy for time, never safety."""

    def test_residual_contract(self, f, fs_kind):
        fs = f if fs_kind == "f" else fs_kind
        for cond in CONDS:
            A, b, _ = build_spd_batch(_case(f, cond, fs=fs))
            res = cg_solve_batched(A, b, config=CGConfig(max_iters=fs, tol=0.0))
            assert np.isfinite(res.x).all()
            b64 = b.astype(np.float64)
            b_norms = np.sqrt(np.einsum("bf,bf->b", b64, b64))
            limit = RESIDUAL_SLACK * b_norms + 64.0 * EPS32 * b_norms.max()
            assert (res.residual_norms <= limit).all(), f"cond={cond:g}"

    def test_more_iterations_no_worse(self, f, fs_kind):
        """On a moderate-κ system the A-norm error is monotone in f_s
        (exact-arithmetic CG guarantee; 5% slack absorbs fp32 noise)."""
        fs = f if fs_kind == "f" else fs_kind
        case = _case(f, 1e2, fs=fs)
        A, b, x_true = build_spd_batch(case)
        A64 = A.astype(np.float64)

        def a_norm_err(x):
            d = x.astype(np.float64) - x_true
            return float(np.einsum("bf,bfg,bg->", d, A64, d))

        shorter = cg_solve_batched(A, b, config=CGConfig(max_iters=fs, tol=0.0))
        longer = cg_solve_batched(A, b, config=CGConfig(max_iters=2 * fs, tol=0.0))
        assert a_norm_err(longer.x) <= 1.05 * a_norm_err(shorter.x) + 1e-12


class TestFusedVsReference:
    """Differential oracle for the CG kernel backends (VF006).

    Same shape as the exact-vs-CG classes above: the fused backend is an
    independent implementation of the same solve, held to the calibrated
    ``backend_pair_tolerance`` — and the pytest grid runs the *same*
    check function the fuzz campaign schedules, so a failure here and a
    ``solver.backends`` campaign failure mean the same thing.
    """

    @pytest.mark.parametrize("f", FACTORS)
    @pytest.mark.parametrize("cond", CONDS)
    def test_converged_fused_tracks_reference(self, f, cond):
        A, b, _ = build_spd_batch(_case(f, cond))
        cfg = CGConfig(max_iters=2 * f, tol=0.0)
        ref = cg_solve_batched(A, b, config=cfg, backend="reference")
        res = cg_solve_batched(A, b, config=cfg, backend="fused")
        assert np.isfinite(res.x).all()
        assert _rel_err(res.x, ref.x) <= backend_pair_tolerance(
            cond, Precision.FP32
        )

    @pytest.mark.parametrize("f", FACTORS)
    def test_converged_fused_tracks_reference_fp16(self, f):
        cond = FP16_COND_DOMAIN  # beyond it the eps16 bound is vacuous
        A, b, _ = build_spd_batch(_case(f, cond))
        cfg = CGConfig(max_iters=2 * f, tol=0.0)
        ref = cg_solve_batched(
            A, b, config=cfg, precision=Precision.FP16, backend="reference"
        )
        res = cg_solve_batched(
            A, b, config=cfg, precision=Precision.FP16, backend="fused"
        )
        assert np.isfinite(res.x).all()
        assert _rel_err(res.x, ref.x) <= backend_pair_tolerance(
            cond, Precision.FP16
        )

    @pytest.mark.parametrize("f", FACTORS)
    @pytest.mark.parametrize("fs_kind", [3, 5, "f"])
    def test_truncated_fused_residual_contract(self, f, fs_kind):
        fs = f if fs_kind == "f" else fs_kind
        for cond in CONDS:
            A, b, _ = build_spd_batch(_case(f, cond, fs=fs))
            res = cg_solve_batched(
                A, b, config=CGConfig(max_iters=fs, tol=0.0), backend="fused"
            )
            assert np.isfinite(res.x).all()
            b64 = b.astype(np.float64)
            b_norms = np.sqrt(np.einsum("bf,bf->b", b64, b64))
            limit = RESIDUAL_SLACK * b_norms + 64.0 * EPS32 * b_norms.max()
            assert (res.residual_norms <= limit).all(), f"cond={cond:g}"

    @pytest.mark.parametrize("cond", CONDS)
    @pytest.mark.parametrize("fs_kind", [0, 3, "f"])
    def test_campaign_oracle_clean_on_grid(self, cond, fs_kind):
        # The exact check the campaign runner schedules, on the pytest
        # grid: zero diagnostics for the shipped backends.
        f = 24
        fs = f if fs_kind == "f" else fs_kind
        assert check_backend_equivalence(_case(f, cond, fs=fs)) == []
