"""Non-finite propagation: detect, name the lanes, never ship bad factors.

ISSUE 4 satellite: poisoned data must either be repaired by the guard
ladder or surface as a structured ``NumericalFault`` naming the affected
lanes — a fit may never silently return non-finite factors.
"""

import numpy as np
import pytest

from repro.core import ALSConfig, ALSModel, CGConfig, Precision, SolverKind
from repro.core.cg import cg_solve_batched
from repro.core.hermitian import hermitian_and_bias
from repro.data import SyntheticConfig, generate_ratings
from repro.resilience.faults import NumericalFault
from repro.resilience.guards import GuardPolicy, check_normal_equations, guarded_solve
from repro.runtime import RuntimePlan, ShardExecutor
from repro.runtime.plan import SupervisionPolicy


def spd_batch(batch=5, f=4, seed=1):
    rng = np.random.default_rng(seed)
    M = rng.normal(size=(batch, f, f)).astype(np.float32)
    A = M @ np.swapaxes(M, 1, 2) + 2.0 * np.eye(f, dtype=np.float32)
    b = rng.normal(size=(batch, f)).astype(np.float32)
    return A, b


def poisoned_ratings(seed=2):
    """A small explicit problem whose first rating is NaN."""
    ratings = generate_ratings(SyntheticConfig(m=40, n=30, nnz=500, seed=seed))
    ratings.row_val[0] = np.nan
    return ratings


class TestCGLaneReport:
    def test_nan_poisoned_lane_is_flagged(self):
        A, b = spd_batch()
        A[3] = np.nan
        with np.errstate(invalid="ignore"):
            result = cg_solve_batched(
                A, b, config=CGConfig(max_iters=5), precision=Precision.FP32,
                lane_report=True,
            )
        assert result.fault_lanes is not None
        assert result.fault_lanes[3]
        assert not result.fault_lanes[[0, 1, 2, 4]].any()

    def test_clean_batch_reports_no_faults(self):
        A, b = spd_batch()
        result = cg_solve_batched(
            A, b, config=CGConfig(max_iters=5), precision=Precision.FP32,
            lane_report=True,
        )
        assert not result.fault_lanes.any()

    def test_default_skips_the_bookkeeping(self):
        A, b = spd_batch()
        result = cg_solve_batched(A, b, config=CGConfig(max_iters=5))
        assert result.fault_lanes is None


class TestHermitianSentinel:
    def test_nan_theta_names_the_touched_users(self):
        ratings = generate_ratings(SyntheticConfig(m=30, n=20, nnz=300, seed=4))
        theta = np.full((20, 6), 0.1, dtype=np.float32)
        theta[7] = np.nan  # every user who rated item 7 is now poisoned
        A, b = hermitian_and_bias(ratings, theta, 0.05)
        touched = sorted(
            u for u in range(30)
            if 7 in ratings.col_idx[ratings.row_ptr[u]:ratings.row_ptr[u + 1]]
        )
        assert touched, "seed must give item 7 at least one rater"
        with pytest.raises(NumericalFault) as err:
            check_normal_equations(A, b)
        assert err.value.stage == "hermitian"
        assert set(touched) <= set(err.value.lanes)

    def test_row_offset_makes_lanes_global(self):
        A, b = spd_batch()
        A[2] = np.inf
        with pytest.raises(NumericalFault) as err:
            check_normal_equations(A, b, row_offset=1000)
        assert err.value.lanes == (1002,)


class TestGuardedOutcomes:
    def test_guarded_output_is_always_finite_under_corruption(self):
        A, b = spd_batch(batch=8, f=5, seed=3)

        def corrupt(store):
            store[1] = np.nan
            store[6] = np.inf

        out = np.empty_like(b)
        guarded_solve(
            A, b, None, out,
            policy=GuardPolicy(), cg_config=CGConfig(max_iters=5),
            precision=Precision.FP16, fault_hook=corrupt,
        )
        assert np.isfinite(out).all()

    def test_fit_on_poisoned_data_raises_with_lanes(self):
        ratings = poisoned_ratings()
        runtime = ShardExecutor(
            RuntimePlan(shards=2),
            supervision=SupervisionPolicy(backoff_seconds=0.0),
            guard=GuardPolicy(),
        )
        model = ALSModel(
            ALSConfig(f=6, lam=0.05, cg=CGConfig(max_iters=4), seed=0),
            runtime=runtime,
        )
        with runtime:
            with pytest.raises(NumericalFault) as err:
                model.fit(ratings, epochs=2)
        assert err.value.lanes  # the poisoned user row is named
        assert 0 in err.value.lanes

    def test_unguarded_lu_fit_ships_nan_factors(self):
        # The baseline hazard the guard closes: an unguarded LU fit
        # propagates the poisoned rating straight into the saved factors.
        # (Unguarded CG is silently wrong differently — it freezes the
        # broken lane and returns its stale warm start.)
        ratings = poisoned_ratings()
        model = ALSModel(ALSConfig(f=6, lam=0.05, solver=SolverKind.LU, seed=0))
        with np.errstate(invalid="ignore", over="ignore"):
            model.fit(ratings, epochs=1)
        assert not np.isfinite(model.x_[0]).all()

    def test_guarded_lu_fit_raises_instead(self):
        ratings = poisoned_ratings()
        runtime = ShardExecutor(RuntimePlan(), guard=GuardPolicy())
        model = ALSModel(
            ALSConfig(f=6, lam=0.05, solver=SolverKind.LU, seed=0),
            runtime=runtime,
        )
        with runtime:
            with pytest.raises(NumericalFault):
                model.fit(ratings, epochs=1)
