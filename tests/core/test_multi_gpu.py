"""Tests for multi-GPU ALS."""

import numpy as np
import pytest

from repro.core import ALSConfig, ALSModel, CGConfig, MultiGpuALS, partition_rows
from repro.data import load_surrogate
from repro.gpusim import PASCAL_P100


@pytest.fixture(scope="module")
def hugewiki_small():
    split, spec = load_surrogate("hugewiki", scale=0.05, seed=2)
    return split, spec


def cfg(**kw):
    base = dict(f=16, lam=0.05, cg=CGConfig(max_iters=6), seed=0)
    base.update(kw)
    return ALSConfig(**base)


class TestPartition:
    def test_covers_all_rows(self):
        ptr = np.array([0, 5, 5, 9, 20, 21])
        parts = partition_rows(ptr, 3)
        assert parts[0][0] == 0
        assert parts[-1][1] == 5
        for (a, b), (c, d) in zip(parts, parts[1:]):
            assert b == c

    def test_balances_nnz(self):
        rng = np.random.default_rng(0)
        counts = rng.integers(0, 50, size=1000)
        ptr = np.concatenate([[0], np.cumsum(counts)])
        parts = partition_rows(ptr, 4)
        sizes = [ptr[b] - ptr[a] for a, b in parts]
        assert max(sizes) < 1.3 * ptr[-1] / 4

    def test_single_part(self):
        ptr = np.array([0, 3, 6])
        assert partition_rows(ptr, 1) == [(0, 2)]

    def test_more_parts_than_rows(self):
        ptr = np.array([0, 3])
        parts = partition_rows(ptr, 4)
        assert parts[0] == (0, 1)
        assert all(a == b for a, b in parts[1:])  # empty tails

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_rows(np.array([0, 1]), 0)


class TestMultiGpu:
    def test_numerics_identical_to_single_gpu(self, hugewiki_small):
        """Row partitioning must not change the math at all."""
        split, _ = hugewiki_small
        single = ALSModel(cfg(), device=PASCAL_P100).fit(
            split.train, split.test, epochs=3
        )
        multi = MultiGpuALS(cfg(), num_gpus=4).fit(split.train, split.test, epochs=3)
        assert multi.final_rmse == pytest.approx(single.final_rmse, rel=1e-5)

    def test_speedup_on_paper_scale(self, hugewiki_small):
        """Paper Table IV: Hugewiki on 4 GPUs is ~3-4x one GPU."""
        split, spec = hugewiki_small
        t1 = (
            MultiGpuALS(cfg(f=100), num_gpus=1, sim_shape=spec.paper)
            .fit(split.train, epochs=1)
            .total_seconds
        )
        t4 = (
            MultiGpuALS(cfg(f=100), num_gpus=4, sim_shape=spec.paper)
            .fit(split.train, epochs=1)
            .total_seconds
        )
        assert 2.5 < t1 / t4 <= 4.05

    def test_engines_synchronized(self, hugewiki_small):
        split, _ = hugewiki_small
        model = MultiGpuALS(cfg(), num_gpus=3)
        model.fit(split.train, epochs=2)
        clocks = [e.clock for e in model.engines]
        assert max(clocks) - min(clocks) < 1e-9

    def test_comm_recorded(self, hugewiki_small):
        split, _ = hugewiki_small
        model = MultiGpuALS(cfg(), num_gpus=2)
        model.fit(split.train, epochs=1)
        tags = model.engines[0].seconds_by_tag()
        assert tags.get("comm", 0) > 0

    def test_single_gpu_has_no_comm(self, hugewiki_small):
        split, _ = hugewiki_small
        model = MultiGpuALS(cfg(), num_gpus=1)
        model.fit(split.train, epochs=1)
        assert model.engines[0].seconds_by_tag().get("comm", 0) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiGpuALS(cfg(), num_gpus=0)
