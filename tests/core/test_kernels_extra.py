"""Additional kernel cost-model coverage: FP16 staging, scheme fractions,
bias behaviour, workload transposition."""

import pytest

from repro.core import ALSConfig, Precision, ReadScheme, bias_spec, hermitian_spec
from repro.core.kernels import _staging_fractions
from repro.data import WorkloadShape
from repro.gpusim import (
    KEPLER_K40,
    MAXWELL_TITANX,
    PASCAL_P100,
    compute_occupancy,
    time_kernel,
)

NETFLIX = WorkloadShape(m=480_189, n=17_770, nnz=99_072_112, f=100)


class TestFp16Staging:
    def test_fp16_staging_halves_payload(self):
        cfg = ALSConfig(f=100)
        s32 = hermitian_spec(MAXWELL_TITANX, NETFLIX, cfg, element_bytes=4)
        s16 = hermitian_spec(MAXWELL_TITANX, NETFLIX, cfg, element_bytes=2)
        load32 = next(p for p in s32.memory_phases if p.name == "load")
        load16 = next(p for p in s16.memory_phases if p.name == "load")
        assert load16.pattern.total_bytes == load32.pattern.total_bytes // 2

    def test_fp16_staging_not_slower(self):
        cfg = ALSConfig(f=100)
        t32 = time_kernel(
            MAXWELL_TITANX, hermitian_spec(MAXWELL_TITANX, NETFLIX, cfg, element_bytes=4)
        )
        t16 = time_kernel(
            MAXWELL_TITANX, hermitian_spec(MAXWELL_TITANX, NETFLIX, cfg, element_bytes=2)
        )
        assert t16.phase_seconds("load") <= t32.phase_seconds("load") * 1.01


class TestStagingFractions:
    @pytest.mark.parametrize("scheme", list(ReadScheme))
    def test_fractions_valid(self, scheme):
        fr = _staging_fractions(MAXWELL_TITANX, scheme, 12, 6, 100, 32, 4)
        assert fr.l1 + fr.l2 + fr.dram == pytest.approx(1.0)

    def test_l1_zero_for_coalesced_and_nol1(self):
        for scheme in (ReadScheme.COALESCED, ReadScheme.NONCOAL_NOL1):
            fr = _staging_fractions(MAXWELL_TITANX, scheme, 12, 6, 100, 32, 4)
            assert fr.l1 == 0.0

    def test_noncoal_l1_hits_seven_eighths(self):
        fr = _staging_fractions(MAXWELL_TITANX, ReadScheme.NONCOAL_L1, 12, 6, 100, 32, 4)
        assert fr.l1 == pytest.approx(7 / 8, abs=0.01)

    def test_dram_fraction_orders_schemes(self):
        """Coalesced hits DRAM the most (per transaction); both non-
        coalesced variants keep most traffic in cache."""
        frac = {
            s: _staging_fractions(MAXWELL_TITANX, s, 12, 6, 100, 32, 4).dram
            for s in ReadScheme
        }
        assert frac[ReadScheme.COALESCED] > frac[ReadScheme.NONCOAL_NOL1]
        assert frac[ReadScheme.COALESCED] > frac[ReadScheme.NONCOAL_L1]


class TestAcrossDevices:
    @pytest.mark.parametrize("device", [KEPLER_K40, MAXWELL_TITANX, PASCAL_P100])
    def test_hermitian_launches_everywhere(self, device):
        cfg = ALSConfig(f=100)
        t = time_kernel(device, hermitian_spec(device, NETFLIX, cfg))
        assert t.seconds > 0
        assert t.occupancy.blocks_per_sm >= 3

    def test_occupancy_limiters_per_generation(self):
        """Maxwell (96 KB smem/SM) is register-limited — the paper's
        Observation 2 arithmetic; Kepler (48 KB, shared with L1) and
        Pascal (64 KB) hit the shared-memory wall one block earlier."""
        cfg = ALSConfig(f=100)
        expected = {
            KEPLER_K40: "shared_memory",
            MAXWELL_TITANX: "registers",
            PASCAL_P100: "shared_memory",
        }
        for device, limiter in expected.items():
            spec = hermitian_spec(device, NETFLIX, cfg)
            occ = compute_occupancy(device, spec.resources)
            assert occ.limiter == limiter, device.name


class TestBiasAcrossShapes:
    def test_bias_scales_with_nnz_not_f_squared(self):
        small_f = WorkloadShape(m=NETFLIX.m, n=NETFLIX.n, nnz=NETFLIX.nnz, f=10)
        big_f = WorkloadShape(m=NETFLIX.m, n=NETFLIX.n, nnz=NETFLIX.nnz, f=100)
        t_small = time_kernel(MAXWELL_TITANX, bias_spec(MAXWELL_TITANX, small_f)).seconds
        t_big = time_kernel(MAXWELL_TITANX, bias_spec(MAXWELL_TITANX, big_f)).seconds
        # 10x f should cost well under 10x (ratings read dominates).
        assert t_big < 6 * t_small

    def test_transposed_shape_swaps_write_cost(self):
        t_x = time_kernel(MAXWELL_TITANX, bias_spec(MAXWELL_TITANX, NETFLIX))
        t_t = time_kernel(MAXWELL_TITANX, bias_spec(MAXWELL_TITANX, NETFLIX.transpose()))
        assert t_x.memory["write"].dram_bytes > t_t.memory["write"].dram_bytes
