"""Tests for the §VII tensor-core projection."""

import pytest

from repro.core import project_tensor_core_epoch
from repro.data import get_dataset
from repro.gpusim import MAXWELL_TITANX, VOLTA_V100

NETFLIX = get_dataset("netflix").paper


class TestVoltaPreset:
    def test_validates(self):
        VOLTA_V100.validate()

    def test_tensor_flops_dominate_fp32(self):
        assert VOLTA_V100.tensor_core_flops > 5 * VOLTA_V100.peak_flops_fp32

    def test_paper_devices_have_none(self):
        assert MAXWELL_TITANX.tensor_core_flops == 0.0


class TestProjection:
    @pytest.fixture(scope="class")
    def proj(self):
        return project_tensor_core_epoch(NETFLIX)

    def test_hermitian_speeds_up(self, proj):
        assert proj.hermitian_speedup > 1.3

    def test_epoch_speedup_bounded_by_amdahl(self, proj):
        """The CG solve is memory-bound and unchanged: the epoch speedup
        must sit strictly between 1 and the hermitian speedup."""
        assert 1.0 < proj.epoch_speedup < proj.hermitian_speedup

    def test_solver_untouched(self, proj):
        assert proj.epoch_with == pytest.approx(
            proj.hermitian_tensor + proj.solve_fp16
        )

    def test_projection_magnitude_sane(self, proj):
        """HMMA at 25% utilization on this shape: ~2-4x on formation."""
        assert 1.5 < proj.hermitian_speedup < 5.0

    def test_rejects_tensorless_device(self):
        with pytest.raises(ValueError, match="no tensor cores"):
            project_tensor_core_epoch(NETFLIX, device=MAXWELL_TITANX)
