"""Conformance suite for CG kernel backends (the VF006 contract, pinned).

Every backend in the registry — present and future — runs through the
same contracts the reference oracle satisfies: the Krylov residual bound
against an exact solve, truncated early-stop equivalence, frozen-lane
compaction invariance, FP16 quantize-skip for entry-frozen lanes,
``out=``-aliasing safety under the arena sanitizer, and (for
non-reference backends) numerical equivalence to the reference within
the derived tolerances of :func:`repro.verify.oracles.backend_pair_tolerance`.
A new backend that registers itself is picked up automatically by the
parametrization; it must pass this file unmodified to be mergeable.
"""

import numpy as np
import pytest

from repro.core.cg import cg_solve_batched
from repro.core.cg_backends import (
    CG_BACKENDS,
    CGKernelBackend,
    FusedBackend,
    backend_names,
    get_backend,
    register_backend,
)
from repro.core.config import CGConfig, Precision
from repro.core.direct import lu_solve_batched
from repro.runtime import plan as plan_mod
from repro.runtime.arena import Workspace
from repro.verify.generators import SPDCase, build_spd_batch
from repro.verify.oracles import (
    CG_KRYLOV_C,
    EPS32,
    FP16_COND_DOMAIN,
    RESIDUAL_SLACK,
    backend_pair_tolerance,
)

BACKENDS = backend_names()
CONDS = [1e2, 1e4, 1e6, 1e8]
FACTORS = [10, 40, 100]


def make_case(f: int, cond: float, fs: int = 0, seed: int = 77, batch: int = 4):
    return SPDCase(
        batch=batch,
        f=f,
        log10_cond=float(np.log10(cond)),
        log10_scale=0.0,
        fs=fs,
        seed=seed,
    )


def spread_batch(batch=12, f=16, seed=3):
    """SPD batch whose lanes converge at very different rates.

    Per-lane eigenvalue spreads plus a logspaced lane scaling make some
    lanes converge within a couple of iterations while others never
    reach ``tol`` — the shape that exercises freezing and compaction.
    """
    rng = np.random.default_rng(seed)
    q, _ = np.linalg.qr(rng.normal(size=(batch, f, f)))
    conds = np.logspace(0.5, 3.0, batch)
    eigs = np.stack([np.logspace(0.0, -np.log10(c), f) for c in conds])
    A = np.einsum("bij,bj,bkj->bik", q, eigs, q).astype(np.float32)
    A *= np.logspace(-1, 1, batch)[:, None, None].astype(np.float32)
    b = rng.normal(0, 1.0, (batch, f)).astype(np.float32)
    return A, b


def assert_results_equal(res, ref):
    np.testing.assert_array_equal(res.x, ref.x)
    assert res.iterations == ref.iterations
    assert res.matvec_count == ref.matvec_count
    np.testing.assert_array_equal(res.residual_norms, ref.residual_norms)


def residual_contract(result, b) -> None:
    """VF002: the returned iterate never worsens the zero-start residual."""
    b64 = b.astype(np.float64)
    b_norms = np.sqrt(np.einsum("bf,bf->b", b64, b64))
    limit = RESIDUAL_SLACK * b_norms + 64.0 * EPS32 * np.max(b_norms)
    assert np.all(result.residual_norms <= limit)


class TestRegistry:
    def test_plan_tuple_mirrors_registry(self):
        # runtime.plan deliberately imports nothing from core, so its
        # backend names are a plain literal — this is the pin that keeps
        # the two in sync when a backend is added.
        assert tuple(plan_mod.CG_BACKENDS) == BACKENDS

    def test_default_backend_is_reference(self):
        assert BACKENDS[0] == "reference"
        assert plan_mod.RuntimePlan().cg_backend == "reference"

    def test_get_backend_by_name_and_instance(self):
        ref = get_backend("reference")
        assert ref.name == "reference"
        assert get_backend(ref) is ref
        inst = FusedBackend()
        assert get_backend(inst) is inst  # unregistered instances pass through

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ValueError, match="reference"):
            get_backend("nope")

    def test_non_protocol_rejected(self):
        with pytest.raises(TypeError):
            get_backend(object())

    def test_register_collision_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(FusedBackend())

    def test_register_requires_name(self):
        class Nameless:
            pass

        with pytest.raises(ValueError, match="name"):
            register_backend(Nameless())

    def test_registered_backends_satisfy_protocol(self):
        for name in BACKENDS:
            assert isinstance(get_backend(name), CGKernelBackend)

    def test_third_party_backend_registers_and_solves(self):
        class Doubly(FusedBackend):
            name = "test-doubly"

        register_backend(Doubly())
        try:
            A, b = spread_batch(batch=3, f=6)
            res = cg_solve_batched(
                A, b, config=CGConfig(max_iters=6, tol=1e-5),
                backend="test-doubly",
            )
            assert np.isfinite(res.x).all()
        finally:
            del CG_BACKENDS["test-doubly"]  # keep the registry pristine


@pytest.mark.parametrize("backend", BACKENDS)
class TestConformance:
    """Contracts every registered backend must satisfy."""

    @pytest.mark.parametrize("cond", CONDS)
    @pytest.mark.parametrize("f", FACTORS)
    def test_krylov_bound_converged(self, backend, cond, f):
        case = make_case(f, cond)
        A, b, _ = build_spd_batch(case)
        exact = lu_solve_batched(A, b)
        result = cg_solve_batched(
            A, b, config=CGConfig(max_iters=case.max_iters, tol=0.0),
            backend=backend,
        )
        assert np.isfinite(result.x).all()
        scale = max(float(np.max(np.abs(exact))), 1e-30)
        rel = float(np.max(np.abs(result.x.astype(np.float64) - exact))) / scale
        assert rel <= min(1.0, CG_KRYLOV_C * cond * EPS32)
        residual_contract(result, b)

    @pytest.mark.parametrize("fs", [3, 5])
    def test_truncated_early_stop_matches_reference(self, backend, fs):
        # Under a strict truncation budget no lane reaches the rs-floor,
        # so freeze decisions depend only on tol and the budget — the
        # iteration/matvec counters must agree exactly across backends.
        # (fs == f runs to near-convergence where the relative rs-floor
        # may trip one iteration apart; covered by the residual test.)
        for f, cond in ((10, 1e4), (40, 1e6), (100, 1e8)):
            case = make_case(f, cond, fs=fs)
            A, b, _ = build_spd_batch(case)
            cfg = CGConfig(max_iters=fs, tol=0.0)
            res = cg_solve_batched(A, b, config=cfg, backend=backend)
            ref = cg_solve_batched(A, b, config=cfg, backend="reference")
            assert res.iterations == ref.iterations == fs
            assert res.matvec_count == ref.matvec_count
            residual_contract(res, b)

    def test_truncated_full_f_budget(self, backend):
        for f, cond in ((10, 1e4), (40, 1e6), (100, 1e8)):
            case = make_case(f, cond, fs=f)
            A, b, _ = build_spd_batch(case)
            result = cg_solve_batched(
                A, b, config=CGConfig(max_iters=f, tol=0.0), backend=backend
            )
            assert result.iterations <= f
            assert np.isfinite(result.x).all()
            residual_contract(result, b)

    @pytest.mark.parametrize("precision", [Precision.FP32, Precision.FP16])
    def test_compaction_modes_bit_identical(self, backend, precision):
        A, b = spread_batch()
        cfg = CGConfig(max_iters=12, tol=1e-2)
        ref = cg_solve_batched(
            A, b, config=cfg, precision=precision,
            compact=False, backend=backend,
        )
        assert 0 < ref.matvec_count < A.shape[0] * ref.iterations  # lanes froze
        for compact in (True, None):
            res = cg_solve_batched(
                A, b, config=cfg, precision=precision,
                compact=compact, backend=backend,
            )
            assert_results_equal(res, ref)

    def test_fp16_quantize_skip_ignores_frozen_rows(self, backend):
        # Lanes converged at entry (zero b, zero start) never load their
        # A rows under FP16 staging: poisoning those rows with NaN must
        # change nothing anywhere.
        A, b = spread_batch(batch=8, f=10)
        frozen = np.array([1, 4, 6])
        b = b.copy()
        b[frozen] = 0.0
        cfg = CGConfig(max_iters=8, tol=1e-3)
        clean = cg_solve_batched(
            A, b, config=cfg, precision=Precision.FP16, backend=backend
        )
        poisoned_A = A.copy()
        poisoned_A[frozen] = np.nan
        res = cg_solve_batched(
            poisoned_A, b, config=cfg, precision=Precision.FP16,
            backend=backend,
        )
        assert_results_equal(res, clean)
        assert np.isfinite(res.x).all()
        np.testing.assert_array_equal(res.x[frozen], 0.0)

    def test_out_aliasing_warm_start_under_sanitizer(self, backend, monkeypatch):
        # ALS warm-starts from the factors living in the very buffer the
        # solver overwrites (x0 is out) — by design.  Under the arena
        # sanitizer this must neither trip a check nor change bits.
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        A, b = spread_batch(batch=6, f=12)
        rng = np.random.default_rng(11)
        warm = rng.normal(0, 0.1, b.shape).astype(np.float32)
        cfg = CGConfig(max_iters=8, tol=1e-4)
        ref = cg_solve_batched(
            A, b, x0=warm.copy(), config=cfg, precision=Precision.FP16,
            backend=backend,
        )
        ws = Workspace()
        aliased = warm.copy()
        res = cg_solve_batched(
            A, b, x0=aliased, config=cfg, precision=Precision.FP16,
            workspace=ws, out=aliased, backend=backend,
        )
        assert res.x is aliased
        assert_results_equal(res, ref)

    def test_workspace_path_bit_identical_and_detached(self, backend):
        A, b = spread_batch(batch=6, f=12)
        cfg = CGConfig(max_iters=8, tol=1e-4)
        ref = cg_solve_batched(
            A, b, config=cfg, precision=Precision.FP16, backend=backend
        )
        ws = Workspace()
        res = cg_solve_batched(
            A, b, config=cfg, precision=Precision.FP16, workspace=ws,
            backend=backend,
        )
        assert_results_equal(res, ref)
        snapshot = res.x.copy()
        A2, b2 = spread_batch(batch=6, f=12, seed=4)
        cg_solve_batched(  # clobber the arena with another solve
            A2, b2, config=cfg, precision=Precision.FP16, workspace=ws,
            backend=backend,
        )
        np.testing.assert_array_equal(res.x, snapshot)  # x was detached

    def test_repeatable(self, backend):
        A, b = spread_batch(batch=5, f=9)
        cfg = CGConfig(max_iters=7, tol=1e-4)
        first = cg_solve_batched(
            A, b, config=cfg, precision=Precision.FP16, backend=backend
        )
        second = cg_solve_batched(
            A, b, config=cfg, precision=Precision.FP16, backend=backend
        )
        assert_results_equal(second, first)


@pytest.mark.parametrize(
    "backend", [n for n in BACKENDS if n != "reference"]
)
class TestVersusReference:
    """Non-reference backends against the frozen oracle (VF006 shape)."""

    @pytest.mark.parametrize("cond", CONDS)
    @pytest.mark.parametrize("f", FACTORS)
    def test_converged_within_derived_tolerance_fp32(self, backend, cond, f):
        case = make_case(f, cond)
        A, b, _ = build_spd_batch(case)
        cfg = CGConfig(max_iters=case.max_iters, tol=0.0)
        ref = cg_solve_batched(A, b, config=cfg, backend="reference")
        res = cg_solve_batched(A, b, config=cfg, backend=backend)
        scale = max(float(np.max(np.abs(ref.x))), 1e-30)
        rel = float(np.max(np.abs(res.x.astype(np.float64) - ref.x))) / scale
        assert rel <= backend_pair_tolerance(cond, Precision.FP32)

    @pytest.mark.parametrize("f", FACTORS)
    def test_converged_within_derived_tolerance_fp16(self, backend, f):
        # FP16 comparison only on the κ domain where the bound is
        # non-vacuous (beyond it the backends' equally-valid quantized
        # systems genuinely differ — the VF003 rationale).
        cond = FP16_COND_DOMAIN
        case = make_case(f, cond)
        A, b, _ = build_spd_batch(case)
        cfg = CGConfig(max_iters=case.max_iters, tol=0.0)
        ref = cg_solve_batched(
            A, b, config=cfg, precision=Precision.FP16, backend="reference"
        )
        res = cg_solve_batched(
            A, b, config=cfg, precision=Precision.FP16, backend=backend
        )
        scale = max(float(np.max(np.abs(ref.x))), 1e-30)
        rel = float(np.max(np.abs(res.x.astype(np.float64) - ref.x))) / scale
        assert rel <= backend_pair_tolerance(cond, Precision.FP16)

    def test_fp16_staging_on_the_binary16_grid(self, backend):
        # Whatever rounding a backend uses, every staged value must be
        # exactly representable in binary16 (storage emulation) — ties
        # may resolve differently, off-grid values may not exist.
        rng = np.random.default_rng(5)
        A = (rng.normal(0, 10.0, (3, 8, 8)) ** 3).astype(np.float32)
        ws = Workspace()
        store = get_backend(backend).stage(A, ws, Precision.FP16)
        on_grid = store.astype(np.float16).astype(np.float32)
        sub = np.abs(store) < 2.0**-14  # binary16 subnormals may keep
        np.testing.assert_array_equal(store[~sub], on_grid[~sub])  # precision
        assert np.all(np.abs(store) <= np.float32(65504.0))
