"""Tests for the CCD++ extension and the §VII future-work features."""

import numpy as np
import pytest

from repro.core import (
    ALSConfig,
    ALSModel,
    CCDConfig,
    CCDModel,
    HybridALSSGD,
    ccd_epoch_seconds,
    recommend_algorithm,
)
from repro.data import RatingMatrix, WorkloadShape, load_surrogate, train_test_split
from repro.gpusim import MAXWELL_TITANX, PASCAL_P100

NETFLIX = WorkloadShape(m=480_189, n=17_770, nnz=99_072_112, f=100)


@pytest.fixture(scope="module")
def small():
    split, spec = load_surrogate("netflix", scale=0.08, seed=13)
    return split, spec


class TestCCD:
    def test_converges(self, small):
        split, _ = small
        curve = CCDModel(CCDConfig(f=16, lam=0.05)).fit(split.train, split.test, epochs=6)
        assert curve.best_rmse < 1.1
        assert curve.final_rmse < 1.02 * curve.best_rmse  # stable plateau

    def test_less_progress_per_epoch_than_als(self, small):
        """Paper §VI-B: 'CCD++ has lower time complexity but makes less
        progress per iteration, compared with ALS'."""
        split, _ = small
        ccd = CCDModel(CCDConfig(f=16, lam=0.05)).fit(split.train, split.test, epochs=3)
        als = ALSModel(ALSConfig(f=16, lam=0.05)).fit(split.train, split.test, epochs=3)
        assert als.final_rmse < ccd.final_rmse

    def test_epoch_cheaper_than_als(self):
        """...and its epoch is cheaper: O(Nz f) vs O(Nz f^2 + (m+n) f^2 fs)."""
        from repro.core import Precision, cg_iteration_spec, hermitian_spec
        from repro.gpusim import time_kernel

        ccd = ccd_epoch_seconds(MAXWELL_TITANX, NETFLIX)
        als_epoch = (
            time_kernel(
                MAXWELL_TITANX, hermitian_spec(MAXWELL_TITANX, NETFLIX, ALSConfig(f=100))
            ).seconds
            + time_kernel(
                MAXWELL_TITANX,
                hermitian_spec(MAXWELL_TITANX, NETFLIX.transpose(), ALSConfig(f=100)),
            ).seconds
            + 6
            * time_kernel(
                MAXWELL_TITANX,
                cg_iteration_spec(MAXWELL_TITANX, NETFLIX.m, 100, Precision.FP16),
            ).seconds
        )
        assert ccd < als_epoch

    def test_residual_consistency(self, small):
        """The maintained residual must match a fresh computation."""
        split, _ = small
        model = CCDModel(CCDConfig(f=8, lam=0.05))
        model.fit(split.train, epochs=2)
        # Recompute train RMSE from factors; compare with model's method.
        got = model.train_rmse_from_residual(split.train)
        assert np.isfinite(got)
        assert got < 1.5

    def test_inner_sweeps(self, small):
        split, _ = small
        one = CCDModel(CCDConfig(f=8, lam=0.05, inner_sweeps=1)).fit(
            split.train, split.test, epochs=2
        )
        two = CCDModel(CCDConfig(f=8, lam=0.05, inner_sweeps=2)).fit(
            split.train, split.test, epochs=2
        )
        # More inner sweeps -> at least as good after equal epochs.
        assert two.final_rmse <= one.final_rmse + 0.02

    def test_validation(self, small):
        split, _ = small
        with pytest.raises(ValueError):
            CCDConfig(f=0)
        with pytest.raises(ValueError):
            CCDConfig(inner_sweeps=0)
        with pytest.raises(ValueError):
            CCDModel(CCDConfig(f=4)).fit(split.train, epochs=0)
        with pytest.raises(RuntimeError):
            CCDModel(CCDConfig(f=4)).train_rmse_from_residual(split.train)


class TestHybrid:
    def test_incremental_update_improves_new_batch(self, small):
        split, _ = small
        model = HybridALSSGD(ALSConfig(f=16, lam=0.05))
        model.fit(split.train, split.test, epochs=5)

        # "New" ratings arrive: use the held-out test set as the stream.
        before = model.als.score(split.test)
        after = model.update(split.test)
        assert after < before

    def test_update_does_not_wreck_old_fit(self, small):
        split, _ = small
        model = HybridALSSGD(ALSConfig(f=16, lam=0.05), sgd_passes=2)
        model.fit(split.train, split.test, epochs=5)
        train_before = model.als.score(split.train)
        model.update(split.test)
        train_after = model.als.score(split.train)
        assert train_after < train_before + 0.1  # bounded interference

    def test_update_cheaper_than_refit(self, small):
        split, _ = small
        model = HybridALSSGD(ALSConfig(f=16, lam=0.05))
        model.fit(split.train, epochs=3)
        clock_before = model.engine.clock
        model.update(split.test)
        incr = model.engine.clock - clock_before
        als_epoch = clock_before / 3
        assert incr < als_epoch / 2

    def test_update_validation(self, small):
        split, _ = small
        model = HybridALSSGD(ALSConfig(f=16))
        with pytest.raises(RuntimeError):
            model.update(split.test)  # not fitted
        model.fit(split.train, epochs=1)
        wrong = RatingMatrix.from_coo([0], [0], [1.0], m=3, n=3)
        with pytest.raises(ValueError):
            model.update(wrong)
        empty = RatingMatrix.from_coo([], [], [], m=split.train.m, n=split.train.n)
        assert np.isnan(model.update(empty))

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            HybridALSSGD(sgd_lr=0.0)
        with pytest.raises(ValueError):
            HybridALSSGD(sgd_passes=0)


class TestAdvisor:
    def test_implicit_always_als(self):
        c = recommend_algorithm(NETFLIX, implicit=True)
        assert c.algorithm == "als"
        assert any("implicit" in r for r in c.reasons)

    def test_multi_gpu_prefers_als(self):
        c = recommend_algorithm(NETFLIX, device=PASCAL_P100, num_gpus=4)
        assert c.algorithm == "als"

    def test_dense_matrix_prefers_als(self):
        dense = WorkloadShape(m=10_000, n=10_000, nnz=5_000_000, f=64)
        assert recommend_algorithm(dense).algorithm == "als"

    def test_estimates_positive(self):
        c = recommend_algorithm(NETFLIX)
        assert c.est_als_epoch_seconds > 0
        assert c.est_sgd_epoch_seconds > 0
        assert c.est_sgd_epoch_seconds < c.est_als_epoch_seconds

    def test_very_sparse_single_gpu_can_prefer_sgd(self):
        sparse = WorkloadShape(m=2_000_000, n=2_000_000, nnz=10_000_000, f=100)
        c = recommend_algorithm(sparse)
        # Either verdict is defensible; the decision must come with reasons.
        assert c.algorithm in ("als", "sgd")
        assert c.reasons
