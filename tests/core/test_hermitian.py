"""Tests for get_hermitian/get_bias numerics against a naive reference."""

import numpy as np
import pytest

from repro.core import hermitian_and_bias, hermitian_rows
from repro.data import RatingMatrix, SyntheticConfig, generate_ratings


def naive_hermitian(ratings, theta, lam, count_weighted=True):
    f = theta.shape[1]
    A = np.zeros((ratings.m, f, f))
    b = np.zeros((ratings.m, f))
    for u in range(ratings.m):
        idx, vals = ratings.user_items(u)
        for v, r in zip(idx, vals):
            A[u] += np.outer(theta[v], theta[v])
            b[u] += r * theta[v]
        w = max(len(idx), 1) if count_weighted else 1.0
        A[u] += w * lam * np.eye(f)
    return A, b


@pytest.fixture(scope="module")
def small():
    ratings = generate_ratings(SyntheticConfig(m=60, n=25, nnz=600, seed=3))
    rng = np.random.default_rng(0)
    theta = rng.normal(size=(25, 8)).astype(np.float32)
    return ratings, theta


class TestAgainstNaive:
    def test_matches_reference(self, small):
        ratings, theta = small
        A, b = hermitian_and_bias(ratings, theta, lam=0.1)
        A_ref, b_ref = naive_hermitian(ratings, theta, 0.1)
        np.testing.assert_allclose(A, A_ref, rtol=2e-4, atol=1e-4)
        np.testing.assert_allclose(b, b_ref, rtol=2e-4, atol=1e-4)

    def test_chunked_matches_unchunked(self, small):
        ratings, theta = small
        A1, b1 = hermitian_and_bias(ratings, theta, 0.1, chunk_elems=2_000)
        A2, b2 = hermitian_and_bias(ratings, theta, 0.1, chunk_elems=10**8)
        np.testing.assert_allclose(A1, A2, rtol=1e-5)
        np.testing.assert_allclose(b1, b2, rtol=1e-5)

    def test_symmetry(self, small):
        ratings, theta = small
        A, _ = hermitian_and_bias(ratings, theta, 0.1)
        np.testing.assert_allclose(A, np.swapaxes(A, 1, 2), rtol=1e-5)

    def test_positive_definite(self, small):
        ratings, theta = small
        A, _ = hermitian_and_bias(ratings, theta, 0.1)
        # λ > 0 guarantees SPD: Cholesky must succeed on every row.
        np.linalg.cholesky(A.astype(np.float64))


class TestEdgeCases:
    def test_empty_rows_get_plain_regularizer(self):
        # User 1 has no ratings at all.
        ratings = RatingMatrix.from_coo([0, 2], [0, 1], [1.0, 2.0], m=3, n=2)
        theta = np.ones((2, 4), dtype=np.float32)
        A, b = hermitian_and_bias(ratings, theta, lam=0.5)
        np.testing.assert_allclose(A[1], 0.5 * np.eye(4), atol=1e-6)
        np.testing.assert_allclose(b[1], 0.0)

    def test_trailing_empty_rows(self):
        ratings = RatingMatrix.from_coo([0], [0], [1.0], m=5, n=2)
        theta = np.ones((2, 3), dtype=np.float32)
        A, b = hermitian_and_bias(ratings, theta, lam=1.0)
        for u in (1, 2, 3, 4):
            np.testing.assert_allclose(A[u], np.eye(3), atol=1e-6)

    def test_leading_empty_rows(self):
        ratings = RatingMatrix.from_coo([4], [1], [2.0], m=5, n=2)
        theta = np.arange(6, dtype=np.float32).reshape(2, 3)
        A, b = hermitian_and_bias(ratings, theta, lam=0.0)
        np.testing.assert_allclose(b[4], 2.0 * theta[1], rtol=1e-6)
        np.testing.assert_allclose(b[:4], 0.0)

    def test_row_range(self, small):
        ratings, theta = small
        A_full, b_full = hermitian_and_bias(ratings, theta, 0.1)
        A_part, b_part = hermitian_rows(ratings, theta, 0.1, rows=slice(10, 30))
        np.testing.assert_allclose(A_part, A_full[10:30], rtol=1e-5)
        np.testing.assert_allclose(b_part, b_full[10:30], rtol=1e-5)

    def test_bad_row_range(self, small):
        ratings, theta = small
        with pytest.raises(ValueError):
            hermitian_rows(ratings, theta, 0.1, rows=slice(0, ratings.m + 1))

    def test_theta_shape_mismatch(self, small):
        ratings, _ = small
        with pytest.raises(ValueError, match="columns"):
            hermitian_and_bias(ratings, np.ones((5, 4), dtype=np.float32), 0.1)

    def test_negative_lambda(self, small):
        ratings, theta = small
        with pytest.raises(ValueError):
            hermitian_and_bias(ratings, theta, -0.1)


class TestWeightedVariant:
    def test_entry_weights(self, small):
        ratings, theta = small
        w = np.full(ratings.nnz, 2.0, dtype=np.float32)
        A_w, _ = hermitian_rows(ratings, theta, 0.0, entry_weights=w)
        A_1, _ = hermitian_rows(ratings, theta, 0.0)
        np.testing.assert_allclose(A_w, 2.0 * A_1, rtol=1e-5)

    def test_bias_values(self, small):
        ratings, theta = small
        ones = np.ones(ratings.nnz, dtype=np.float32)
        _, b = hermitian_rows(ratings, theta, 0.0, bias_values=ones)
        # b_u = sum of θ over the user's items.
        u = int(np.argmax(ratings.row_counts()))
        idx, _ = ratings.user_items(u)
        np.testing.assert_allclose(b[u], theta[idx].sum(axis=0), rtol=1e-4)

    def test_constant_regularizer(self, small):
        ratings, theta = small
        A_c, _ = hermitian_rows(ratings, theta, 0.7, count_weighted_reg=False)
        A_0, _ = hermitian_rows(ratings, theta, 0.0)
        np.testing.assert_allclose(
            A_c - A_0, np.broadcast_to(0.7 * np.eye(8), A_c.shape), atol=1e-5
        )

    def test_weight_shape_checked(self, small):
        ratings, theta = small
        with pytest.raises(ValueError):
            hermitian_rows(
                ratings, theta, 0.0, entry_weights=np.ones(3, dtype=np.float32)
            )
        with pytest.raises(ValueError):
            hermitian_rows(
                ratings, theta, 0.0, bias_values=np.ones(3, dtype=np.float32)
            )
