"""Tests for the hermitian kernel variants and their workspace paths.

``reduceat`` with a workspace/out must be bit-identical to the seed's
allocate-fresh path; ``grouped`` is float32-close but takes a different
summation order, so it gets a tolerance, never exactness.
"""

import warnings

import numpy as np
import pytest

from repro.core.hermitian import (
    HERMITIAN_METHODS,
    _reset_oversized_row_warning,
    hermitian_and_bias,
    hermitian_rows,
)
from repro.data import SyntheticConfig, generate_ratings
from repro.runtime import Workspace

LAM = 0.1


@pytest.fixture(scope="module")
def small():
    ratings = generate_ratings(SyntheticConfig(m=70, n=24, nnz=700, seed=9))
    rng = np.random.default_rng(4)
    theta = rng.normal(0, 0.3, (24, 8)).astype(np.float32)
    return ratings, theta


class TestGroupedMethod:
    def test_close_to_reduceat(self, small):
        ratings, theta = small
        A1, b1 = hermitian_and_bias(ratings, theta, LAM)
        A2, b2 = hermitian_and_bias(ratings, theta, LAM, method="grouped")
        np.testing.assert_allclose(A1, A2, rtol=1e-4, atol=1e-5)
        np.testing.assert_allclose(b1, b2, rtol=1e-4, atol=1e-5)

    def test_chunking_invariant(self, small):
        ratings, theta = small
        A1, b1 = hermitian_and_bias(ratings, theta, LAM, method="grouped")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            A2, b2 = hermitian_and_bias(
                ratings, theta, LAM, method="grouped", chunk_elems=64
            )
        assert np.array_equal(A1, A2)
        assert np.array_equal(b1, b2)

    def test_unknown_method_rejected(self, small):
        ratings, theta = small
        assert set(HERMITIAN_METHODS) == {"reduceat", "grouped"}
        with pytest.raises(ValueError):
            hermitian_and_bias(ratings, theta, LAM, method="simd")


class TestWorkspacePath:
    @pytest.mark.parametrize("method", HERMITIAN_METHODS)
    def test_bit_identical_to_fresh_scratch(self, small, method):
        ratings, theta = small
        ref_A, ref_b = hermitian_and_bias(ratings, theta, LAM, method=method)
        ws = Workspace()
        f = theta.shape[1]
        out = (
            np.empty((ratings.m, f, f), np.float32),
            np.empty((ratings.m, f), np.float32),
        )
        for _ in range(2):  # second pass runs entirely on cached buffers
            A, b = hermitian_and_bias(
                ratings, theta, LAM, method=method, workspace=ws, out=out
            )
            assert A is out[0] and b is out[1]
            assert np.array_equal(A, ref_A)
            assert np.array_equal(b, ref_b)
        ws.reset_counters()
        hermitian_and_bias(
            ratings, theta, LAM, method=method, workspace=ws, out=out
        )
        assert ws.allocations == 0

    def test_rows_slice_matches_full(self, small):
        ratings, theta = small
        full_A, full_b = hermitian_and_bias(ratings, theta, LAM)
        A, b = hermitian_rows(ratings, theta, LAM, rows=slice(10, 40))
        assert np.array_equal(A, full_A[10:40])
        assert np.array_equal(b, full_b[10:40])

    def test_out_shape_validated(self, small):
        ratings, theta = small
        f = theta.shape[1]
        bad = (
            np.empty((ratings.m, f, f + 1), np.float32),
            np.empty((ratings.m, f), np.float32),
        )
        with pytest.raises(ValueError):
            hermitian_and_bias(ratings, theta, LAM, out=bad)


class TestOversizedRowClamp:
    def test_budget_clamped_row_still_correct(self, small):
        ratings, theta = small
        ref = hermitian_and_bias(ratings, theta, LAM)
        _reset_oversized_row_warning()
        with pytest.warns(RuntimeWarning, match="chunk budget"):
            clamped = hermitian_and_bias(ratings, theta, LAM, chunk_elems=1)
        assert np.array_equal(ref[0], clamped[0])
        assert np.array_equal(ref[1], clamped[1])

    def test_warns_only_once(self, small):
        ratings, theta = small
        _reset_oversized_row_warning()
        with pytest.warns(RuntimeWarning):
            hermitian_and_bias(ratings, theta, LAM, chunk_elems=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            hermitian_and_bias(ratings, theta, LAM, chunk_elems=1)

    def test_ample_budget_never_warns(self, small):
        ratings, theta = small
        _reset_oversized_row_warning()
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            hermitian_and_bias(ratings, theta, LAM)
