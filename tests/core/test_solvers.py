"""Tests for the batched CG and exact solvers."""

import numpy as np
import pytest

from repro.core import (
    CGConfig,
    Precision,
    cg_solve_batched,
    cholesky_solve_batched,
    lu_solve_batched,
)


def random_spd_batch(batch, f, seed=0, rng=None):
    """Well-conditioned SPD batch; all randomness flows through ``rng``
    (seeded from ``seed`` when not provided) so campaigns can drive many
    batches from one root generator."""
    if rng is None:
        rng = np.random.default_rng(seed)
    Q = rng.normal(size=(batch, f, f))
    A = np.einsum("bij,bkj->bik", Q, Q) / f + np.eye(f)[None]
    x_true = rng.normal(size=(batch, f))
    b = np.einsum("bij,bj->bi", A, x_true)
    return A.astype(np.float32), b.astype(np.float32), x_true.astype(np.float32)


class TestExactSolvers:
    def test_lu_exact(self):
        A, b, x_true = random_spd_batch(32, 16)
        x = lu_solve_batched(A, b)
        np.testing.assert_allclose(x, x_true, rtol=1e-3, atol=1e-3)

    def test_cholesky_exact(self):
        A, b, x_true = random_spd_batch(32, 16)
        x = cholesky_solve_batched(A, b)
        np.testing.assert_allclose(x, x_true, rtol=1e-3, atol=1e-3)

    def test_cholesky_matches_lu(self):
        A, b, _ = random_spd_batch(8, 24, seed=5)
        np.testing.assert_allclose(
            cholesky_solve_batched(A, b), lu_solve_batched(A, b), rtol=1e-3, atol=1e-4
        )

    def test_cholesky_rejects_indefinite(self):
        A = -np.eye(4, dtype=np.float32)[None]
        b = np.ones((1, 4), dtype=np.float32)
        with pytest.raises(np.linalg.LinAlgError):
            cholesky_solve_batched(A, b)

    @pytest.mark.parametrize("solver", [lu_solve_batched, cholesky_solve_batched])
    def test_shape_validation(self, solver):
        with pytest.raises(ValueError):
            solver(np.ones((4, 4), dtype=np.float32), np.ones((4,), dtype=np.float32))
        with pytest.raises(ValueError):
            solver(
                np.ones((2, 4, 4), dtype=np.float32), np.ones((2, 5), dtype=np.float32)
            )


class TestCG:
    def test_full_iterations_give_exact_solution(self):
        A, b, x_true = random_spd_batch(16, 12)
        res = cg_solve_batched(A, b, config=CGConfig(max_iters=50, tol=1e-7))
        np.testing.assert_allclose(res.x, x_true, rtol=1e-2, atol=1e-2)

    def test_truncation_approximate_but_close(self):
        A, b, x_true = random_spd_batch(16, 32)
        res = cg_solve_batched(A, b, config=CGConfig(max_iters=6, tol=0.0))
        err = np.abs(res.x - x_true).max()
        assert res.iterations == 6
        assert err < 0.5  # approximate, not garbage

    def test_warm_start_accelerates(self):
        """The key property enabling f_s=6: starting near the solution,
        few iterations reach high accuracy."""
        A, b, x_true = random_spd_batch(16, 32)
        x0 = x_true + 0.01 * np.random.default_rng(1).normal(size=x_true.shape).astype(
            np.float32
        )
        cold = cg_solve_batched(A, b, config=CGConfig(max_iters=3, tol=0.0))
        warm = cg_solve_batched(A, b, x0=x0, config=CGConfig(max_iters=3, tol=0.0))
        assert np.abs(warm.x - x_true).max() < np.abs(cold.x - x_true).max()

    def test_tolerance_stops_early(self):
        A, b, _ = random_spd_batch(8, 16)
        res = cg_solve_batched(A, b, config=CGConfig(max_iters=100, tol=1e-3))
        assert res.iterations < 100
        assert (res.residual_norms < 1e-2).all()

    def test_per_system_freezing(self):
        """Systems that converge early stop consuming matvecs."""
        A, b, _ = random_spd_batch(8, 16)
        # Make system 0 trivially converged: b = 0.
        b = b.copy()
        b[0] = 0.0
        res = cg_solve_batched(A, b, config=CGConfig(max_iters=20, tol=1e-5))
        assert res.matvec_count < res.iterations * 8
        np.testing.assert_allclose(res.x[0], 0.0, atol=1e-6)

    def test_fp16_storage_still_converges(self):
        A, b, x_true = random_spd_batch(16, 16)
        res = cg_solve_batched(
            A, b, config=CGConfig(max_iters=30, tol=0.0), precision=Precision.FP16
        )
        # FP16 quantization of A limits accuracy but not stability.
        assert np.abs(res.x - x_true).max() < 0.2
        assert np.isfinite(res.x).all()

    def test_fp16_error_larger_than_fp32(self):
        A, b, x_true = random_spd_batch(32, 16, seed=9)
        cfg = CGConfig(max_iters=40, tol=0.0)
        e32 = np.abs(cg_solve_batched(A, b, config=cfg).x - x_true).max()
        e16 = np.abs(
            cg_solve_batched(A, b, config=cfg, precision=Precision.FP16).x - x_true
        ).max()
        assert e16 > e32

    def test_zero_rhs(self):
        A, _, _ = random_spd_batch(4, 8)
        b = np.zeros((4, 8), dtype=np.float32)
        res = cg_solve_batched(A, b)
        np.testing.assert_allclose(res.x, 0.0, atol=1e-7)
        assert res.iterations == 0  # all inactive immediately

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            cg_solve_batched(np.ones((4, 4), dtype=np.float32), np.ones((4,)))
        A, b, _ = random_spd_batch(2, 4)
        with pytest.raises(ValueError):
            cg_solve_batched(A, b[:, :3])
        with pytest.raises(ValueError):
            cg_solve_batched(A, b, x0=np.ones((2, 3), dtype=np.float32))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CGConfig(max_iters=0)
        with pytest.raises(ValueError):
            CGConfig(tol=-1.0)

    def test_matvec_accounting(self):
        A, b, _ = random_spd_batch(10, 8)
        res = cg_solve_batched(A, b, config=CGConfig(max_iters=4, tol=0.0))
        assert res.matvec_count == 4 * 10

    def test_helper_accepts_external_generator(self):
        rng = np.random.default_rng(7)
        A1, b1, _ = random_spd_batch(3, 5, rng=rng)
        A2, b2, _ = random_spd_batch(3, 5, seed=7)
        np.testing.assert_array_equal(A1, A2)
        np.testing.assert_array_equal(b1, b2)


class TestCGDegenerateScales:
    """Regression tests for the relative (not absolute) numerical guards.

    The old absolute clamps (``np.maximum(denom, 1e-20)`` style) silently
    corrupted the step size on legitimately tiny-scale systems: A = s·I
    with s = 1e-10 stalled at x = 0 instead of converging in one
    iteration.  Guards must scale with each system's own ‖b‖².
    """

    @pytest.mark.parametrize("scale", [1e-10, 1e-6, 1.0, 1e6, 1e10])
    def test_scaled_identity_solves_exactly(self, scale):
        f = 8
        A = (np.float32(scale) * np.eye(f, dtype=np.float32))[None]
        x_true = np.linspace(-1.0, 1.0, f, dtype=np.float32)[None]
        b = A[0] @ x_true[0]
        res = cg_solve_batched(A, b[None], config=CGConfig(max_iters=5, tol=0.0))
        # CG solves A = s·I in one exact step at any representable scale.
        np.testing.assert_allclose(res.x, x_true, rtol=1e-5, atol=0.0)

    def test_mixed_scale_batch_all_finite(self):
        rng = np.random.default_rng(3)
        systems = []
        for log_s in (-10, -5, 0, 5, 10):
            A, b, _ = random_spd_batch(1, 6, rng=rng)
            systems.append((A * np.float32(10.0**log_s), b * np.float32(10.0**log_s)))
        A = np.concatenate([s[0] for s in systems])
        b = np.concatenate([s[1] for s in systems])
        res = cg_solve_batched(A, b, config=CGConfig(max_iters=12, tol=0.0))
        assert np.isfinite(res.x).all()
        assert np.isfinite(res.residual_norms).all()
        # Residuals shrink relative to each system's own ‖b‖.
        b_norms = np.sqrt(np.einsum("bf,bf->b", b, b))
        assert (res.residual_norms <= 1e-3 * b_norms).all()

    def test_singular_system_freezes_instead_of_nan(self):
        """A rank-deficient A_u (the degenerate case the fuzzer targets)
        must freeze the offending system, never emit NaN."""
        f = 6
        A = np.zeros((2, f, f), dtype=np.float32)
        A[0] = np.eye(f)
        # System 1 is singular: rank-1 outer product with zero diagonal tail.
        v = np.zeros(f, dtype=np.float32)
        v[0] = 1.0
        A[1] = np.outer(v, v)
        b = np.ones((2, f), dtype=np.float32)
        res = cg_solve_batched(A, b, config=CGConfig(max_iters=20, tol=0.0))
        assert np.isfinite(res.x).all()
        np.testing.assert_allclose(res.x[0], 1.0, rtol=1e-5)
