"""Tests for the end-to-end ALS trainer."""

import numpy as np
import pytest

from repro.core import ALSConfig, ALSModel, CGConfig, Precision, SolverKind
from repro.data import WorkloadShape, load_surrogate
from repro.gpusim import KEPLER_K40, MAXWELL_TITANX, PASCAL_P100


@pytest.fixture(scope="module")
def netflix_small():
    split, spec = load_surrogate("netflix", scale=0.08, seed=1)
    return split, spec


def quick_cfg(**kw):
    base = dict(f=16, lam=0.05, cg=CGConfig(max_iters=6), seed=0)
    base.update(kw)
    return ALSConfig(**base)


class TestConvergence:
    def test_rmse_decreases(self, netflix_small):
        split, _ = netflix_small
        model = ALSModel(quick_cfg())
        curve = model.fit(split.train, split.test, epochs=6)
        rmses = curve.rmse_array()
        assert rmses[-1] < rmses[0]
        assert rmses[-1] < 1.0  # recovers most of the planted signal

    def test_train_rmse_monotonic_enough(self, netflix_small):
        """ALS minimizes the regularized train objective; train RMSE should
        be non-increasing after the first epochs."""
        split, _ = netflix_small
        curve = ALSModel(quick_cfg()).fit(split.train, split.test, epochs=6)
        tr = [p.train_rmse for p in curve.points]
        assert all(a >= b - 1e-3 for a, b in zip(tr[1:], tr[2:]))

    def test_cg_matches_lu_convergence(self, netflix_small):
        """Paper Solution 3: truncated CG does not hurt ALS convergence."""
        split, _ = netflix_small
        cg = ALSModel(quick_cfg(solver=SolverKind.CG)).fit(
            split.train, split.test, epochs=5
        )
        lu = ALSModel(quick_cfg(solver=SolverKind.LU)).fit(
            split.train, split.test, epochs=5
        )
        assert cg.final_rmse == pytest.approx(lu.final_rmse, abs=0.02)

    def test_fp16_matches_fp32_convergence(self, netflix_small):
        """Paper Solution 4: FP16 A-storage preserves accuracy."""
        split, _ = netflix_small
        h = ALSModel(quick_cfg(precision=Precision.FP16)).fit(
            split.train, split.test, epochs=5
        )
        s = ALSModel(quick_cfg(precision=Precision.FP32)).fit(
            split.train, split.test, epochs=5
        )
        assert h.final_rmse == pytest.approx(s.final_rmse, abs=0.02)

    def test_early_stop_at_target(self, netflix_small):
        split, _ = netflix_small
        model = ALSModel(quick_cfg())
        curve = model.fit(split.train, split.test, epochs=50, target_rmse=1.1)
        assert curve.points[-1].rmse <= 1.1
        assert len(curve.points) < 50

    def test_deterministic(self, netflix_small):
        split, _ = netflix_small
        a = ALSModel(quick_cfg()).fit(split.train, split.test, epochs=2)
        b = ALSModel(quick_cfg()).fit(split.train, split.test, epochs=2)
        assert a.final_rmse == b.final_rmse


class TestSimulatedTiming:
    def test_clock_advances_per_epoch(self, netflix_small):
        split, _ = netflix_small
        model = ALSModel(quick_cfg())
        curve = model.fit(split.train, split.test, epochs=3)
        secs = curve.seconds_array()
        assert (np.diff(secs) > 0).all()

    def test_paper_shape_pricing(self, netflix_small):
        """With sim_shape=paper Netflix, epochs cost paper-scale seconds
        regardless of the surrogate size."""
        split, spec = netflix_small
        model = ALSModel(quick_cfg(f=100), sim_shape=spec.paper)
        curve = model.fit(split.train, split.test, epochs=2)
        per_epoch = curve.total_seconds / 2
        assert 0.4 < per_epoch < 3.0  # paper: ~0.65 s/iter on Maxwell

    def test_pascal_faster_than_kepler(self, netflix_small):
        split, spec = netflix_small
        t = {}
        for dev in (KEPLER_K40, PASCAL_P100):
            m = ALSModel(quick_cfg(f=100), device=dev, sim_shape=spec.paper)
            t[dev.generation] = m.fit(split.train, epochs=1).total_seconds
        assert t["Pascal"] < t["Kepler"]

    def test_lu_slower_than_cg(self, netflix_small):
        """Figure 5's aggregate effect on epoch time."""
        split, spec = netflix_small
        cg = ALSModel(
            quick_cfg(f=100, solver=SolverKind.CG, precision=Precision.FP16),
            sim_shape=spec.paper,
        ).fit(split.train, epochs=1)
        lu = ALSModel(
            quick_cfg(f=100, solver=SolverKind.LU), sim_shape=spec.paper
        ).fit(split.train, epochs=1)
        assert lu.total_seconds > cg.total_seconds * 1.5

    def test_epoch_breakdown_recorded(self, netflix_small):
        split, _ = netflix_small
        model = ALSModel(quick_cfg())
        model.fit(split.train, epochs=3)
        assert len(model.epoch_breakdowns_) == 3
        for bd in model.epoch_breakdowns_:
            assert bd.get_hermitian > 0
            assert bd.solve > 0
            assert bd.total == pytest.approx(
                bd.get_hermitian + bd.get_bias + bd.solve
            )


class TestAPI:
    def test_predict_and_score(self, netflix_small):
        split, _ = netflix_small
        model = ALSModel(quick_cfg())
        model.fit(split.train, epochs=3)
        pred = model.predict(np.array([0, 1]), np.array([0, 1]))
        assert pred.shape == (2,)
        assert np.isfinite(model.score(split.test))

    def test_unfitted_raises(self):
        model = ALSModel(quick_cfg())
        with pytest.raises(RuntimeError, match="not fitted"):
            model.predict(np.array([0]), np.array([0]))
        with pytest.raises(RuntimeError):
            model.score(None)

    def test_bad_epochs(self, netflix_small):
        split, _ = netflix_small
        with pytest.raises(ValueError):
            ALSModel(quick_cfg()).fit(split.train, epochs=0)

    def test_target_without_test(self, netflix_small):
        split, _ = netflix_small
        with pytest.raises(ValueError, match="test set"):
            ALSModel(quick_cfg()).fit(split.train, epochs=1, target_rmse=1.0)

    def test_factor_shapes(self, netflix_small):
        split, _ = netflix_small
        model = ALSModel(quick_cfg(f=16))
        model.fit(split.train, epochs=1)
        assert model.x_.shape == (split.train.m, 16)
        assert model.theta_.shape == (split.train.n, 16)
        assert model.x_.dtype == np.float32

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ALSConfig(f=0)
        with pytest.raises(ValueError):
            ALSConfig(lam=-1)
        with pytest.raises(ValueError):
            ALSConfig(bin_size=0)
        with pytest.raises(ValueError):
            ALSConfig(tile=-1)
        with pytest.raises(ValueError):
            ALSConfig(init_scale=0.0)
