"""Bit-identity regression tests for the CG solver's optimized paths.

Every fast path here — workspace arenas, frozen-lane matvec compaction,
the entry-frozen FP16 quantize skip, aliased ``out=`` buffers — is a
pure execution-strategy change.  These tests pin the contract that the
returned solution, counters and residuals are *bitwise* those of the
seed's allocate-everything, compute-everything implementation.
"""

import numpy as np
import pytest

from repro.core.cg import cg_solve_batched
from repro.core.cg_backends import backend_names
from repro.core.config import CGConfig, Precision
from repro.runtime import Workspace


def spd_batch(batch, f, seed=0, spread=True):
    """SPD systems with varied conditioning so lanes freeze at different
    iterations (which is what makes compaction paths interesting)."""
    rng = np.random.default_rng(seed)
    M = rng.normal(size=(batch, f, f)).astype(np.float32)
    A = (M @ np.swapaxes(M, 1, 2) + f * np.eye(f, dtype=np.float32)).astype(
        np.float32
    )
    if spread:
        scale = np.logspace(-1, 1, batch, dtype=np.float32)
        A *= scale[:, None, None]
    b = rng.normal(size=(batch, f)).astype(np.float32)
    return A, b


def assert_results_equal(res, ref):
    assert np.array_equal(res.x, ref.x)
    assert res.iterations == ref.iterations
    assert res.matvec_count == ref.matvec_count
    assert np.array_equal(res.residual_norms, ref.residual_norms)


CFG = CGConfig(max_iters=8, tol=1e-2)


class TestWorkspacePath:
    @pytest.mark.parametrize("precision", [Precision.FP32, Precision.FP16])
    @pytest.mark.parametrize("with_x0", [False, True])
    def test_bit_identical_to_fresh_scratch(self, precision, with_x0):
        A, b = spd_batch(24, 6)
        x0 = (0.1 * b) if with_x0 else None
        ref = cg_solve_batched(A, b, x0=x0, config=CFG, precision=precision)
        ws = Workspace()
        out = np.empty_like(b)
        for _ in range(2):  # second pass hits only cached buffers
            res = cg_solve_batched(
                A, b, x0=x0, config=CFG, precision=precision,
                workspace=ws, out=out,
            )
            assert res.x is out
            assert_results_equal(res, ref)
        ws.reset_counters()
        cg_solve_batched(
            A, b, x0=x0, config=CFG, precision=precision,
            workspace=ws, out=out,
        )
        assert ws.allocations == 0

    def test_out_aliasing_x0_is_safe(self):
        """Epoch >= 2 passes the same persistent buffer as warm start and
        output; the solver must read x0 fully before writing out."""
        A, b = spd_batch(16, 5, seed=3)
        x0 = (0.1 * b).copy()
        ref = cg_solve_batched(A, b, x0=x0.copy(), config=CFG)
        aliased = x0  # same array serves as x0 and out
        res = cg_solve_batched(A, b, x0=aliased, config=CFG, out=aliased)
        assert_results_equal(res, ref)

    def test_out_shape_validated(self):
        A, b = spd_batch(4, 3)
        with pytest.raises(ValueError):
            cg_solve_batched(A, b, config=CFG, out=np.empty((4, 5), np.float32))


class TestCompaction:
    @pytest.mark.parametrize("precision", [Precision.FP32, Precision.FP16])
    def test_forced_modes_bit_identical(self, precision):
        A, b = spd_batch(32, 6, seed=1)
        x0 = 0.05 * b
        results = [
            cg_solve_batched(
                A, b, x0=x0, config=CFG, precision=precision, compact=mode
            )
            for mode in (False, True, None)
        ]
        freezes_early = any(r.matvec_count < 32 * r.iterations for r in results)
        assert freezes_early  # the spread conditioning must exercise compaction
        for res in results[1:]:
            assert_results_equal(res, results[0])

    def test_compaction_with_workspace(self):
        A, b = spd_batch(32, 6, seed=2)
        ref = cg_solve_batched(A, b, config=CFG, compact=False)
        ws = Workspace()
        res = cg_solve_batched(
            A, b, config=CFG, compact=True, workspace=ws, out=np.empty_like(b)
        )
        assert_results_equal(res, ref)


class TestEntryFrozenQuantizeSkip:
    def test_frozen_systems_identical_to_dense_quantize(self):
        """FP16 quantization is skipped for systems frozen on entry; the
        results must match the path that quantizes the whole batch."""
        A, b = spd_batch(20, 6, seed=5)
        b[3] = 0.0  # ‖b‖ = 0 with x0=None: frozen before iteration 0
        b[11] = 0.0
        b[19] = 0.0
        ref = cg_solve_batched(A, b, config=CFG, precision=Precision.FP16)
        ws = Workspace()
        res = cg_solve_batched(
            A, b, config=CFG, precision=Precision.FP16,
            workspace=ws, out=np.empty_like(b),
        )
        assert_results_equal(res, ref)
        assert np.array_equal(res.x[3], np.zeros(6, np.float32))
        assert res.residual_norms[3] == 0.0

    def test_frozen_rows_never_poison_active_ones(self):
        A, b = spd_batch(20, 6, seed=6)
        # Extreme values in frozen systems' A: a sloppy skip that still
        # multiplies through them would overflow FP16 and go non-finite.
        A[4] = np.float32(1e30) * np.eye(6, dtype=np.float32)
        b[4] = 0.0
        res = cg_solve_batched(
            A, b, config=CFG, precision=Precision.FP16,
            workspace=Workspace(), out=np.empty_like(b),
        )
        assert np.all(np.isfinite(res.x))
        assert np.all(np.isfinite(res.residual_norms))

    def test_all_frozen_batch(self):
        A, _ = spd_batch(5, 4, seed=7)
        b = np.zeros((5, 4), np.float32)
        for ws in (None, Workspace()):
            res = cg_solve_batched(
                A, b, config=CFG, precision=Precision.FP16, workspace=ws
            )
            assert np.array_equal(res.x, b)
            assert res.iterations == 0
            assert res.matvec_count == 0


@pytest.mark.parametrize("backend", backend_names())
class TestCompactionEdgeCases:
    """Degenerate freeze patterns, pinned bit-identical per backend.

    Compaction only changes *which lanes* the matvec touches, never the
    per-lane arithmetic, so compacted and uncompacted sweeps must agree
    bitwise even in the degenerate shapes: everything frozen at entry, a
    single surviving lane (gather of one), and lanes that freeze on the
    very last permitted iteration (compaction engaged for zero remaining
    iterations).
    """

    def all_modes(self, A, b, backend, cfg=CFG, x0=None, precision=Precision.FP32):
        return [
            cg_solve_batched(
                A, b, x0=x0, config=cfg, precision=precision,
                compact=mode, backend=backend,
            )
            for mode in (False, True, None)
        ]

    @pytest.mark.parametrize("precision", [Precision.FP32, Precision.FP16])
    def test_all_lanes_frozen_at_entry(self, backend, precision):
        A, _ = spd_batch(6, 5, seed=8)
        b = np.zeros((6, 5), np.float32)
        results = self.all_modes(A, b, backend, precision=precision)
        for res in results:
            assert res.iterations == 0
            assert res.matvec_count == 0
            assert np.array_equal(res.x, b)
        for res in results[1:]:
            assert_results_equal(res, results[0])

    @pytest.mark.parametrize("precision", [Precision.FP32, Precision.FP16])
    def test_single_active_lane(self, backend, precision):
        # Every lane but one converged at entry: forced compaction runs
        # the whole solve through (1, f, f) gathers.
        A, b = spd_batch(10, 6, seed=9)
        b[:] = 0.0
        rng = np.random.default_rng(10)
        b[7] = rng.normal(0, 1.0, 6).astype(np.float32)
        results = self.all_modes(A, b, backend, precision=precision)
        ref = results[0]
        assert ref.matvec_count == ref.iterations  # one lane pays per iter
        assert ref.iterations > 0
        for res in results[1:]:
            assert_results_equal(res, results[0])
        np.testing.assert_array_equal(ref.x[:7], 0.0)

    def test_lane_freezes_on_final_permitted_iteration(self, backend):
        # Sweep max_iters so some budget has a lane crossing tol exactly
        # on its last permitted iteration (residual history proves it);
        # compaction must stay bit-identical right at that boundary.
        A, b = spd_batch(16, 6, seed=11)
        boundary_hit = False
        for max_iters in range(1, 9):
            cfg = CGConfig(max_iters=max_iters, tol=1e-2)
            results = self.all_modes(A, b, backend, cfg=cfg)
            ref = results[0]
            for res in results[1:]:
                assert_results_equal(res, ref)
            if max_iters > 1:
                prev = cg_solve_batched(
                    A, b, config=CGConfig(max_iters=max_iters - 1, tol=1e-2),
                    compact=False, backend=backend,
                )
                crossed = (prev.residual_norms >= 1e-2) & (
                    ref.residual_norms < 1e-2
                )
                boundary_hit |= bool(crossed.any())
        assert boundary_hit  # the sweep really exercised the boundary
