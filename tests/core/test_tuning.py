"""Tests for the simulator-driven hermitian autotuner."""

import pytest

from repro.core import ReadScheme
from repro.core.tuning import tune_hermitian
from repro.data import WorkloadShape, get_dataset
from repro.gpusim import KEPLER_K40, MAXWELL_TITANX

NETFLIX = get_dataset("netflix").paper


@pytest.fixture(scope="module")
def tuned():
    return tune_hermitian(MAXWELL_TITANX, NETFLIX)


class TestTuneHermitian:
    def test_best_is_launchable_and_fastest(self, tuned):
        assert tuned.best.launchable
        launchable = [c for c in tuned.candidates if c.launchable]
        assert tuned.best.seconds == min(c.seconds for c in launchable)

    def test_paper_config_near_optimal(self, tuned):
        """The paper's hand-tuned (T=10, 64 threads, BIN=32) must land
        within ~1.5x of the sweep optimum — hand-tuning was good."""
        paper = next(
            c
            for c in tuned.candidates
            if (c.tile, c.threads_per_block, c.bin_size) == (10, 64, 32)
        )
        assert paper.seconds < 1.5 * tuned.best.seconds

    def test_best_prefers_fma_dense_tiles(self, tuned):
        """Tiny tiles waste issue slots on loads; the winner must be
        reasonably FMA-dense."""
        assert tuned.best.tile >= 8

    def test_registers_reported(self, tuned):
        paper = next(
            c
            for c in tuned.candidates
            if (c.tile, c.threads_per_block, c.bin_size) == (10, 64, 32)
        )
        assert paper.registers_per_thread == 168  # the paper's figure

    def test_as_config(self, tuned):
        cfg = tuned.as_config(f=100, lam=0.05)
        assert cfg.tile == tuned.best.tile
        assert cfg.bin_size == tuned.best.bin_size
        assert cfg.lam == 0.05

    def test_kepler_differs_or_matches_maxwell(self):
        """The sweep must run cross-device (different register budgets)."""
        r = tune_hermitian(KEPLER_K40, NETFLIX)
        assert r.best.launchable

    def test_sweep_respects_f(self):
        small = WorkloadShape(m=1000, n=500, nnz=20_000, f=8)
        r = tune_hermitian(MAXWELL_TITANX, small, tiles=(4, 8, 16))
        # tiles > f are skipped.
        assert all(c.tile <= 8 for c in r.candidates)

    def test_unlaunchable_configs_visible(self):
        """Oversized BIN appears in candidates with seconds=inf."""
        r = tune_hermitian(
            MAXWELL_TITANX,
            NETFLIX,
            tiles=(10,),
            thread_blocks=(64,),
            bin_sizes=(32, 256),  # 256*100*4 = 100 KB > 48 KB/block
        )
        dead = [c for c in r.candidates if not c.launchable]
        assert len(dead) == 1
        assert dead[0].bin_size == 256
        assert dead[0].seconds == float("inf")

    def test_all_dead_sweep_raises(self):
        with pytest.raises(ValueError, match="no launchable"):
            tune_hermitian(
                MAXWELL_TITANX,
                NETFLIX,
                tiles=(10,),
                thread_blocks=(64,),
                bin_sizes=(256,),
            )

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError):
            tune_hermitian(MAXWELL_TITANX, NETFLIX, tiles=())

    def test_read_scheme_forwarded(self):
        r_l1 = tune_hermitian(MAXWELL_TITANX, NETFLIX, tiles=(10,),
                              thread_blocks=(64,), bin_sizes=(32,))
        r_coal = tune_hermitian(
            MAXWELL_TITANX, NETFLIX, read_scheme=ReadScheme.COALESCED,
            tiles=(10,), thread_blocks=(64,), bin_sizes=(32,),
        )
        assert r_coal.best.seconds > r_l1.best.seconds
