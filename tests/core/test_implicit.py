"""Tests for implicit-feedback ALS."""

import numpy as np
import pytest

from repro.core import (
    CGConfig,
    ImplicitALSConfig,
    ImplicitALSModel,
    Precision,
    SolverKind,
    implicit_loss,
)
from repro.data import RatingMatrix, SyntheticConfig, generate_ratings


@pytest.fixture(scope="module")
def clicks():
    # Count-like implicit data: 1..20 "click counts".
    return generate_ratings(
        SyntheticConfig(m=300, n=120, nnz=4000, rating_min=1, rating_max=20, seed=8)
    )


def cfg(**kw):
    base = dict(f=12, lam=0.1, alpha=10.0, cg=CGConfig(max_iters=8), seed=0)
    base.update(kw)
    return ImplicitALSConfig(**base)


class TestImplicitLoss:
    def test_dense_equivalence(self):
        """The sparse trick must equal the brute-force dense loss."""
        ratings = generate_ratings(
            SyntheticConfig(m=20, n=10, nnz=60, rating_min=1, rating_max=5, seed=2)
        )
        rng = np.random.default_rng(0)
        x = rng.normal(size=(20, 4)).astype(np.float32)
        theta = rng.normal(size=(10, 4)).astype(np.float32)
        alpha, lam = 5.0, 0.3

        R = ratings.to_scipy().toarray()
        P = (R > 0).astype(float)
        C = 1.0 + alpha * R
        pred = x @ theta.T
        dense = np.sum(C * (P - pred) ** 2) + lam * (
            np.sum(x.astype(np.float64) ** 2) + np.sum(theta.astype(np.float64) ** 2)
        )
        fast = implicit_loss(x, theta, ratings, alpha, lam)
        assert fast == pytest.approx(dense, rel=1e-4)


class TestImplicitTraining:
    def test_loss_decreases_monotonically(self, clicks):
        """Implicit ALS is exact block-coordinate descent (with enough CG
        iterations), so the loss must fall every epoch."""
        model = ImplicitALSModel(cfg(solver=SolverKind.LU))
        model.fit(clicks, epochs=5)
        losses = model.loss_history_
        assert all(a >= b - 1e-6 for a, b in zip(losses, losses[1:]))

    def test_cg_close_to_exact(self, clicks):
        cg = ImplicitALSModel(cfg(solver=SolverKind.CG)).fit(clicks, epochs=4)
        lu = ImplicitALSModel(cfg(solver=SolverKind.LU)).fit(clicks, epochs=4)
        assert cg.loss_history_[-1] == pytest.approx(lu.loss_history_[-1], rel=0.05)

    def test_observed_scored_above_unobserved(self, clicks):
        """The point of one-class MF: observed items must outrank the
        unobserved ones on average."""
        model = ImplicitALSModel(cfg()).fit(clicks, epochs=6)
        scores = model.recommend_scores(np.arange(clicks.m))
        mask = (clicks.to_scipy().toarray() > 0)
        assert scores[mask].mean() > scores[~mask].mean() + 0.1

    def test_seconds_per_epoch(self, clicks):
        model = ImplicitALSModel(cfg()).fit(clicks, epochs=2)
        assert model.seconds_per_epoch > 0

    def test_fp16_variant_finite(self, clicks):
        model = ImplicitALSModel(cfg(precision=Precision.FP16)).fit(clicks, epochs=2)
        assert np.isfinite(model.x_).all()
        assert np.isfinite(model.loss_history_[-1])

    def test_unfitted_raises(self, clicks):
        model = ImplicitALSModel(cfg())
        with pytest.raises(RuntimeError):
            model.recommend_scores(np.array([0]))
        with pytest.raises(RuntimeError):
            _ = model.seconds_per_epoch
        with pytest.raises(ValueError):
            model.fit(clicks, epochs=0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ImplicitALSConfig(alpha=0.0)
        with pytest.raises(ValueError):
            ImplicitALSConfig(f=-1)
        with pytest.raises(ValueError):
            ImplicitALSConfig(lam=-0.1)
