"""Tests for the kernel cost builders — where the paper's resource
arithmetic must come out exactly."""

import pytest

from repro.core import (
    ALSConfig,
    Precision,
    ReadScheme,
    bias_spec,
    cg_iteration_spec,
    hermitian_resources,
    hermitian_spec,
    lu_solver_seconds,
)
from repro.core.kernels import REGISTER_CLAMP, hermitian_register_demand
from repro.data import WorkloadShape
from repro.gpusim import MAXWELL_TITANX, compute_occupancy, time_kernel

NETFLIX = WorkloadShape(m=480_189, n=17_770, nnz=99_072_112, f=100)


class TestHermitianResources:
    def test_paper_register_count(self):
        """f=100, T=10, 64 threads → 168 registers/thread (paper §III)."""
        res = hermitian_resources(100, tile=10, threads_per_block=64)
        assert res.registers_per_thread == 168

    def test_paper_occupancy(self):
        res = hermitian_resources(100)
        occ = compute_occupancy(MAXWELL_TITANX, res)
        assert occ.blocks_per_sm == 6  # the paper's ≈6
        assert occ.is_latency_limited

    def test_shared_memory_is_bin_times_f(self):
        res = hermitian_resources(100, bin_size=32)
        assert res.shared_mem_per_block == 32 * 100 * 4  # 12.8 KB

    def test_register_cap(self):
        res = hermitian_resources(400, tile=20)
        assert res.registers_per_thread == 255

    def test_validation(self):
        with pytest.raises(ValueError):
            hermitian_resources(0)
        with pytest.raises(ValueError):
            hermitian_resources(100, tile=0)

    def test_register_demand_matches_paper(self):
        assert hermitian_register_demand(100, tile=10, threads_per_block=64) == 168

    def test_demand_validation(self):
        with pytest.raises(ValueError):
            hermitian_register_demand(0)
        with pytest.raises(ValueError):
            hermitian_register_demand(100, tile=10, threads_per_block=0)

    def test_clamp_records_requested_registers(self):
        """Satellite: clamping is explicit — the pre-clamp demand survives."""
        demand = hermitian_register_demand(400, tile=20)
        assert demand > REGISTER_CLAMP
        res = hermitian_resources(400, tile=20)
        assert res.registers_per_thread == REGISTER_CLAMP
        assert res.requested_registers == demand
        assert res.is_register_clamped

    def test_unclamped_config_not_marked_clamped(self):
        res = hermitian_resources(100)
        assert res.requested_registers == res.registers_per_thread == 168
        assert not res.is_register_clamped


class TestHermitianSpec:
    def cfg(self, scheme):
        return ALSConfig(f=100, read_scheme=scheme)

    def test_flops_are_nz_f_squared(self):
        spec = hermitian_spec(MAXWELL_TITANX, NETFLIX, self.cfg(ReadScheme.NONCOAL_L1))
        assert spec.flops == pytest.approx(NETFLIX.nnz * 100 * 100)

    def test_figure4_scheme_ordering_on_load(self):
        """nonCoal-L1 < nonCoal-noL1 < coal for the staging load phase."""
        times = {}
        for scheme in ReadScheme:
            spec = hermitian_spec(MAXWELL_TITANX, NETFLIX, self.cfg(scheme))
            t = time_kernel(MAXWELL_TITANX, spec)
            times[scheme] = t.memory["load"].seconds
        assert (
            times[ReadScheme.NONCOAL_L1]
            < times[ReadScheme.NONCOAL_NOL1]
            < times[ReadScheme.COALESCED]
        )

    def test_compute_time_constant_across_schemes(self):
        """Paper Fig 4: compute is the same for all read schemes."""
        secs = [
            time_kernel(
                MAXWELL_TITANX, hermitian_spec(MAXWELL_TITANX, NETFLIX, self.cfg(s))
            ).compute.seconds
            for s in ReadScheme
        ]
        assert max(secs) == pytest.approx(min(secs))

    def test_write_scales_with_rows(self):
        """Paper Fig 4: update-X writes m·f², update-Θ writes n·f²."""
        cfg = self.cfg(ReadScheme.NONCOAL_L1)
        t_x = time_kernel(MAXWELL_TITANX, hermitian_spec(MAXWELL_TITANX, NETFLIX, cfg))
        t_th = time_kernel(
            MAXWELL_TITANX, hermitian_spec(MAXWELL_TITANX, NETFLIX.transpose(), cfg)
        )
        ratio = t_x.memory["write"].seconds / t_th.memory["write"].seconds
        assert ratio == pytest.approx(NETFLIX.m / NETFLIX.n, rel=0.05)

    def test_netflix_epoch_scale_plausible(self):
        """One update-X hermitian pass on Maxwell lands in the 0.2-1.5 s
        range consistent with the paper's per-iteration times."""
        spec = hermitian_spec(MAXWELL_TITANX, NETFLIX, self.cfg(ReadScheme.NONCOAL_L1))
        t = time_kernel(MAXWELL_TITANX, spec)
        assert 0.2 < t.seconds < 1.5


class TestBiasSpec:
    def test_cheaper_than_hermitian(self):
        cfg = ALSConfig(f=100)
        herm = time_kernel(
            MAXWELL_TITANX, hermitian_spec(MAXWELL_TITANX, NETFLIX, cfg)
        ).seconds
        bias = time_kernel(MAXWELL_TITANX, bias_spec(MAXWELL_TITANX, NETFLIX)).seconds
        assert bias < herm / 10


class TestCGIterationSpec:
    def test_memory_bound(self):
        spec = cg_iteration_spec(MAXWELL_TITANX, NETFLIX.m, 100, Precision.FP32)
        t = time_kernel(MAXWELL_TITANX, spec)
        assert t.memory_seconds > t.compute.seconds

    def test_fp16_roughly_halves_time(self):
        """Paper Fig 5: CG-FP16 takes ~1/2 of CG-FP32."""
        t32 = time_kernel(
            MAXWELL_TITANX,
            cg_iteration_spec(MAXWELL_TITANX, NETFLIX.m, 100, Precision.FP32),
        ).seconds
        t16 = time_kernel(
            MAXWELL_TITANX,
            cg_iteration_spec(MAXWELL_TITANX, NETFLIX.m, 100, Precision.FP16),
        ).seconds
        assert t16 == pytest.approx(t32 / 2, rel=0.2)

    def test_l1_does_not_help(self):
        """Paper Fig 5: solve-L1 == solve-noL1 — the streamed A matrices
        cannot be cached."""
        base = dict(batch=NETFLIX.m, f=100, precision=Precision.FP32)
        t_no = time_kernel(
            MAXWELL_TITANX, cg_iteration_spec(MAXWELL_TITANX, **base, use_l1=False)
        ).seconds
        t_l1 = time_kernel(
            MAXWELL_TITANX, cg_iteration_spec(MAXWELL_TITANX, **base, use_l1=True)
        ).seconds
        assert t_l1 == pytest.approx(t_no, rel=0.02)

    def test_high_occupancy(self):
        spec = cg_iteration_spec(MAXWELL_TITANX, NETFLIX.m, 100, Precision.FP32)
        occ = compute_occupancy(MAXWELL_TITANX, spec.resources)
        assert occ.occupancy > 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            cg_iteration_spec(MAXWELL_TITANX, 0, 100, Precision.FP32)


class TestSolverComparison:
    def test_figure5_cg_fp32_quarter_of_lu(self):
        """Paper Fig 5: 'CG-FP32 is 1/4 of the LU-FP32 time' (f_s=6)."""
        lu = lu_solver_seconds(MAXWELL_TITANX, NETFLIX.m, 100)
        cg_iter = time_kernel(
            MAXWELL_TITANX,
            cg_iteration_spec(MAXWELL_TITANX, NETFLIX.m, 100, Precision.FP32),
        ).seconds
        ratio = lu / (6 * cg_iter)
        assert 2.5 < ratio < 6.5  # ~4x, allow model slack

    def test_figure5_solver_dominates_hermitian_for_lu(self):
        """Paper Observation 3: LU solve time ≈ 2x get_hermitian."""
        cfg = ALSConfig(f=100)
        herm = (
            time_kernel(MAXWELL_TITANX, hermitian_spec(MAXWELL_TITANX, NETFLIX, cfg)).seconds
            + time_kernel(
                MAXWELL_TITANX,
                hermitian_spec(MAXWELL_TITANX, NETFLIX.transpose(), cfg),
            ).seconds
        )
        lu = lu_solver_seconds(MAXWELL_TITANX, NETFLIX.m, 100) + lu_solver_seconds(
            MAXWELL_TITANX, NETFLIX.n, 100
        )
        assert 1.0 < lu / herm < 4.0
