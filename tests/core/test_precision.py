"""Tests for FP16 storage emulation."""

import numpy as np
import pytest

from repro.core import Precision, max_abs_error, quantize, storage_bytes


class TestQuantize:
    def test_fp32_identity(self):
        a = np.array([1.234567, -9.87], dtype=np.float32)
        np.testing.assert_array_equal(quantize(a, Precision.FP32), a)

    def test_fp16_roundtrip_loses_precision(self):
        a = np.array([1.0001], dtype=np.float32)
        q = quantize(a, Precision.FP16)
        assert q.dtype == np.float32  # arithmetic stays FP32
        assert q[0] != a[0]
        assert abs(q[0] - a[0]) < 1e-3

    def test_fp16_relative_error_bound(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=1000).astype(np.float32)
        q = quantize(a, Precision.FP16)
        rel = np.abs(q - a) / np.maximum(np.abs(a), 1e-6)
        assert rel.max() < 2**-10  # binary16 has 10 mantissa bits

    def test_fp16_overflow_saturates(self):
        a = np.array([1e6, -1e6], dtype=np.float32)
        q = quantize(a, Precision.FP16)
        assert np.isfinite(q).all()
        assert q[0] == pytest.approx(65504.0)
        assert q[1] == pytest.approx(-65504.0)

    def test_exact_values_preserved(self):
        a = np.array([0.0, 1.0, -2.0, 0.5, 1024.0], dtype=np.float32)
        np.testing.assert_array_equal(quantize(a, Precision.FP16), a)


class TestHelpers:
    def test_storage_bytes(self):
        assert storage_bytes(100, Precision.FP32) == 400
        assert storage_bytes(100, Precision.FP16) == 200
        with pytest.raises(ValueError):
            storage_bytes(-1, Precision.FP32)

    def test_max_abs_error(self):
        a = np.array([1.0001], dtype=np.float32)
        assert max_abs_error(a, Precision.FP32) == 0.0
        assert 0 < max_abs_error(a, Precision.FP16) < 1e-3

    def test_max_abs_error_empty(self):
        assert max_abs_error(np.array([]), Precision.FP16) == 0.0

    def test_itemsize(self):
        assert Precision.FP32.itemsize == 4
        assert Precision.FP16.itemsize == 2
