"""Tests for the measured-throughput plan autotuner."""

import numpy as np
import pytest

from repro.core.hermitian import HERMITIAN_METHODS
from repro.data import SyntheticConfig, generate_ratings
from repro.runtime import AutotuneReport, RuntimePlan, autotune_plan
from repro.runtime.autotune import CHUNK_CANDIDATES, _warmup_rows


@pytest.fixture(scope="module")
def ratings():
    return generate_ratings(SyntheticConfig(m=120, n=40, nnz=1_200, seed=2))


class TestAutotunePlan:
    def test_returns_valid_measured_report(self, ratings):
        report = autotune_plan(
            ratings, 8, warmup_nnz=300, repeats=1, workers=0
        )
        assert isinstance(report, AutotuneReport)
        assert report.plan.method in HERMITIAN_METHODS
        assert report.plan.chunk_elems in CHUNK_CANDIDATES
        assert 1 <= report.warmup_rows <= ratings.m
        assert all(s >= 0.0 for _, _, s in report.timings)

    def test_winner_is_fastest_candidate(self, ratings):
        report = autotune_plan(
            ratings, 8, warmup_nnz=300, repeats=1, workers=0
        )
        best = min(report.timings, key=lambda t: t[2])
        assert (report.plan.method, report.plan.chunk_elems) == best[:2]

    def test_sweeps_every_method_candidate_pair(self, ratings):
        report = autotune_plan(
            ratings, 8, warmup_nnz=300, repeats=1, workers=0
        )
        floor = 8 * 8 * 8
        expected = len(HERMITIAN_METHODS) * sum(
            1 for c in CHUNK_CANDIDATES if c >= floor
        )
        assert len(report.timings) == expected

    def test_workers_zero_means_serial_plan(self, ratings):
        plan = autotune_plan(ratings, 4, warmup_nnz=100, workers=0).plan
        assert plan.workers == 0
        assert plan.shards == 1

    def test_explicit_workers_respected(self, ratings):
        plan = autotune_plan(ratings, 4, warmup_nnz=100, workers=3).plan
        assert plan.workers == 3
        assert plan.shards == 3

    def test_single_method_subset(self, ratings):
        report = autotune_plan(
            ratings, 4, warmup_nnz=100, methods=("grouped",), workers=0
        )
        assert report.plan.method == "grouped"

    def test_as_dict_round_trips_plan(self, ratings):
        report = autotune_plan(ratings, 4, warmup_nnz=100, workers=0)
        payload = report.as_dict()
        assert RuntimePlan(**payload["plan"]) == report.plan
        assert len(payload["timings"]) == len(report.timings)

    def test_invalid_inputs_rejected(self, ratings):
        with pytest.raises(ValueError):
            autotune_plan(ratings, 0)
        with pytest.raises(ValueError):
            autotune_plan(ratings, 4, repeats=0)
        with pytest.raises(ValueError):
            autotune_plan(ratings, 4, methods=("simd",))


class TestIndexProbe:
    def test_skipped_by_default(self, ratings):
        report = autotune_plan(ratings, 4, warmup_nnz=100, workers=0)
        assert report.index_unit_seconds is None
        assert report.plan.index_budget is None

    def test_allowance_converts_to_work_unit_budget(self, ratings):
        report = autotune_plan(
            ratings, 4, warmup_nnz=100, workers=0,
            index_build_seconds=0.05,
        )
        assert report.index_unit_seconds is not None
        assert report.index_unit_seconds > 0
        budget = report.plan.index_budget
        assert budget == int(0.05 / report.index_unit_seconds)
        assert budget > 0

    def test_zero_allowance_means_zero_budget(self, ratings):
        report = autotune_plan(
            ratings, 4, warmup_nnz=100, workers=0, index_build_seconds=0.0
        )
        # Budget 0 is the explicit "never build" sentinel downstream.
        assert report.plan.index_budget == 0
        assert report.index_unit_seconds is not None

    def test_negative_allowance_rejected(self, ratings):
        with pytest.raises(ValueError):
            autotune_plan(
                ratings, 4, warmup_nnz=100, workers=0,
                index_build_seconds=-1.0,
            )

    def test_as_dict_carries_probe_and_plan_budget(self, ratings):
        payload = autotune_plan(
            ratings, 4, warmup_nnz=100, workers=0,
            index_build_seconds=0.02,
        ).as_dict()
        assert payload["index_unit_seconds"] > 0
        revived = RuntimePlan(**payload["plan"])
        assert revived.index_budget == payload["plan"]["index_budget"]

    def test_plan_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            RuntimePlan(index_budget=-1)


class TestWarmupRows:
    def test_prefix_covers_requested_nnz(self):
        ptr = np.array([0, 3, 7, 9, 20])
        assert _warmup_rows(ptr, 7) == 2
        assert _warmup_rows(ptr, 8) == 3

    def test_clamped_to_matrix(self):
        ptr = np.array([0, 3, 7])
        assert _warmup_rows(ptr, 10**9) == 2
        assert _warmup_rows(ptr, 0) == 1
