"""Tests for the shard executor: determinism, arena steady state, solvers.

The load-bearing property is the ISSUE's acceptance criterion: the same
seed produces **bit-identical** factors whatever the runtime plan —
serial, sharded, forked workers, any chunk size, arena on or off.  The
reference is always the raw seed pipeline (``hermitian_and_bias`` +
``cg_solve_batched``).
"""

import numpy as np
import pytest

from repro.core.cg import cg_solve_batched
from repro.core.config import CGConfig, Precision, SolverKind
from repro.core.direct import lu_solve_batched
from repro.core.hermitian import hermitian_and_bias
from repro.data import SyntheticConfig, generate_ratings
from repro.runtime import CsrView, HalfStepResult, RuntimePlan, ShardExecutor

LAM = 0.08
CG = CGConfig(max_iters=5, tol=1e-5)


@pytest.fixture(scope="module")
def problem():
    ratings = generate_ratings(SyntheticConfig(m=80, n=30, nnz=900, seed=5))
    rng = np.random.default_rng(1)
    theta = rng.normal(0, 0.1, (30, 12)).astype(np.float32)
    warm = rng.normal(0, 0.1, (80, 12)).astype(np.float32)
    return ratings, theta, warm


@pytest.fixture(scope="module")
def reference(problem):
    ratings, theta, warm = problem
    A, b = hermitian_and_bias(ratings, theta, LAM)
    return cg_solve_batched(A, b, x0=warm, config=CG, precision=Precision.FP16)


PLANS = {
    "serial": RuntimePlan(),
    "sharded-4": RuntimePlan(shards=4),
    "small-chunks": RuntimePlan(shards=3, chunk_elems=2_048),
    "no-arena": RuntimePlan(shards=4, arena=False),
    "compact-cg": RuntimePlan(shards=2, compact_cg=True),
    "workers-1": RuntimePlan(shards=4, workers=1),
    "workers-4": RuntimePlan(shards=4, workers=4),
}


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(PLANS))
    def test_bit_identical_to_seed_pipeline(self, problem, reference, name):
        ratings, theta, warm = problem
        executor = ShardExecutor(PLANS[name])
        try:
            result = executor.half_step(
                ratings, theta, warm, lam=LAM, cg_config=CG,
                precision=Precision.FP16,
            )
            assert np.array_equal(result.factors, reference.x)
            assert result.cg_iterations == reference.iterations
            assert result.cg_matvec_count == reference.matvec_count
        finally:
            executor.close()

    def test_repeat_half_steps_stay_identical(self, problem, reference):
        ratings, theta, warm = problem
        executor = ShardExecutor(RuntimePlan(shards=4))
        try:
            for _ in range(3):
                result = executor.half_step(
                    ratings, theta, warm, lam=LAM, cg_config=CG,
                    precision=Precision.FP16,
                )
                assert np.array_equal(result.factors, reference.x)
        finally:
            executor.close()


class TestArenaSteadyState:
    def test_zero_allocations_after_warmup(self, problem):
        """The acceptance criterion: steady-state half-steps allocate nothing."""
        ratings, theta, warm = problem
        executor = ShardExecutor(RuntimePlan(shards=3))
        try:
            executor.half_step(ratings, theta, warm, lam=LAM, cg_config=CG)
            executor.workspace.reset_counters()
            executor.half_step(ratings, theta, warm, lam=LAM, cg_config=CG)
            assert executor.workspace.allocations == 0
            assert executor.workspace.reuses > 0
        finally:
            executor.close()

    def test_no_arena_plan_has_no_workspace(self):
        executor = ShardExecutor(RuntimePlan(arena=False))
        assert executor.workspace is None
        executor.close()

    def test_output_buffer_is_persistent_per_key(self, problem):
        ratings, theta, warm = problem
        executor = ShardExecutor()
        try:
            first = executor.half_step(
                ratings, theta, warm, lam=LAM, cg_config=CG
            ).factors
            second = executor.half_step(
                ratings, theta, warm, lam=LAM, cg_config=CG
            ).factors
            assert first is second  # same buffer, rewritten in place
        finally:
            executor.close()


class TestSolverPaths:
    def test_lu_path_matches_direct_solve(self, problem):
        ratings, theta, _ = problem
        A, b = hermitian_and_bias(ratings, theta, LAM)
        expected = lu_solve_batched(A, b)
        executor = ShardExecutor(RuntimePlan(shards=3))
        try:
            result = executor.half_step(
                ratings, theta, lam=LAM, solver=SolverKind.LU
            )
            assert np.array_equal(result.factors, expected)
            assert result.cg_iterations == 0
            assert result.cg_matvec_count == 0
        finally:
            executor.close()

    def test_cold_start_without_warm(self, problem):
        ratings, theta, _ = problem
        A, b = hermitian_and_bias(ratings, theta, LAM)
        expected = cg_solve_batched(A, b, config=CG, precision=Precision.FP16)
        executor = ShardExecutor(RuntimePlan(shards=4))
        try:
            result = executor.half_step(
                ratings, theta, lam=LAM, cg_config=CG,
                precision=Precision.FP16,
            )
            assert np.array_equal(result.factors, expected.x)
        finally:
            executor.close()


class TestDataTypes:
    def test_csr_view_validates_shapes(self):
        ptr = np.array([0, 2, 3], dtype=np.int64)
        idx = np.array([0, 1, 0], dtype=np.int32)
        val = np.ones(3, dtype=np.float32)
        view = CsrView(m=2, n=2, row_ptr=ptr, col_idx=idx, row_val=val)
        assert view.nnz == 3
        with pytest.raises(ValueError):
            CsrView(m=3, n=2, row_ptr=ptr, col_idx=idx, row_val=val)
        with pytest.raises(ValueError):
            CsrView(m=2, n=2, row_ptr=ptr, col_idx=idx[:2], row_val=val)

    def test_csr_view_runs_a_half_step(self, problem, reference):
        ratings, theta, warm = problem
        view = CsrView(
            m=ratings.m, n=ratings.n, row_ptr=ratings.row_ptr,
            col_idx=ratings.col_idx, row_val=ratings.row_val,
        )
        executor = ShardExecutor(RuntimePlan(shards=2))
        try:
            result = executor.half_step(
                view, theta, warm, lam=LAM, cg_config=CG,
                precision=Precision.FP16,
            )
            assert np.array_equal(result.factors, reference.x)
        finally:
            executor.close()

    def test_half_step_result_validates(self):
        factors = np.zeros((2, 3), dtype=np.float32)
        with pytest.raises(ValueError):
            HalfStepResult(
                factors=factors, cg_iterations=1, cg_matvec_count=1, shards=0
            )
        with pytest.raises(ValueError):
            HalfStepResult(
                factors=factors, cg_iterations=-1, cg_matvec_count=0, shards=1
            )


class TestTeardown:
    """close() / __del__ racing must unlink each shm segment exactly once."""

    def _executor_with_segments(self, problem):
        ratings, theta, warm = problem
        executor = ShardExecutor(RuntimePlan(shards=2, workers=2))
        executor.half_step(ratings, theta, warm, lam=LAM, cg_config=CG)
        assert executor._shm  # the forked run staged factors in shm
        return executor

    @pytest.mark.filterwarnings("error")
    def test_close_is_idempotent(self, problem):
        executor = self._executor_with_segments(problem)
        names = [blk.name for blk in executor._shm.values()]
        executor.close()
        assert executor._shm == {}
        executor.close()  # second close: nothing to do, nothing raised
        from multiprocessing import shared_memory
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    @pytest.mark.filterwarnings("error")
    def test_close_then_del_does_not_double_unlink(self, problem):
        executor = self._executor_with_segments(problem)
        executor.close()
        executor.__del__()  # simulates gc after an explicit close

    @pytest.mark.filterwarnings("error")
    def test_del_alone_releases_segments(self, problem):
        executor = self._executor_with_segments(problem)
        names = [blk.name for blk in executor._shm.values()]
        executor.__del__()
        from multiprocessing import shared_memory
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
