"""CG fast-path properties: allocation-free steady state, tuned plans,
plan serialization, and the gated ``cg`` bench floor.

The speed *ratio* itself is asserted conservatively here (tiny shapes on
shared CI hardware are noisy); the real 2x floor is enforced by the
``bench-smoke`` CI job against ``benchmarks/baseline.json`` at the QUICK
shape, where the measurement is stable.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.cg import cg_solve_batched
from repro.core.cg_backends import backend_names
from repro.core.config import CGConfig, Precision
from repro.data import SyntheticConfig, generate_ratings
from repro.runtime.arena import Workspace
from repro.runtime.autotune import autotune_plan
from repro.runtime.bench import BenchConfig, compare_against, run_bench
from repro.runtime.plan import CG_BACKENDS, RuntimePlan

TINY = BenchConfig(m=250, n=60, nnz=1_800, f=8, repeats=1, cg_iters=3)


def spd_problem(batch=400, f=24, seed=0):
    rng = np.random.default_rng(seed)
    M = rng.normal(0, 0.3, (batch, f, f)).astype(np.float32)
    A = np.einsum("bij,bkj->bik", M, M) + 0.1 * np.eye(f, dtype=np.float32)
    b = rng.normal(0, 1.0, (batch, f)).astype(np.float32)
    warm = rng.normal(0, 0.1, (batch, f)).astype(np.float32)
    return A, b, warm


class TestZeroSteadyStateAllocations:
    @pytest.mark.parametrize("backend", backend_names())
    def test_warm_solver_never_allocates(self, backend):
        A, b, warm = spd_problem()
        ws = Workspace()
        out = np.empty_like(b)
        cfg = CGConfig(max_iters=5, tol=1e-5)

        def solve(compact):
            return cg_solve_batched(
                A, b, x0=warm, config=cfg, precision=Precision.FP16,
                workspace=ws, compact=compact, out=out, backend=backend,
            )

        for compact in (False, True, None):
            solve(compact)  # warm every buffer each mode touches
        ws.reset_counters()
        for compact in (False, True, None):
            solve(compact)
            solve(compact)
        assert ws.allocations == 0, (
            f"backend {backend!r} allocated in steady state: "
            f"{ws.allocations_by_key}"
        )
        assert ws.allocations_by_key == {}
        assert ws.reuses > 0

    def test_per_key_counter_names_the_grower(self):
        # The observability contract the assertion above relies on: when
        # a steady-state probe trips, allocations_by_key names the
        # buffer, so the failure message points at the kernel to blame.
        ws = Workspace()
        ws.request("cg.x", (4, 8))
        ws.request("cg.x", (4, 8))  # reuse: no new entry
        ws.request("cg.x", (16, 8))  # growth: counted again
        ws.request("cg.r", (4, 8))
        assert ws.allocations_by_key == {"cg.x": 2, "cg.r": 1}
        assert sum(ws.allocations_by_key.values()) == ws.allocations
        ws.reset_counters()
        assert ws.allocations_by_key == {}


class TestFusedFasterThanLegacy:
    def test_fused_beats_legacy_cg_leg(self):
        # Conservative floor (the committed baseline says 2x at the
        # bench shape; 1.1x here keeps tiny-shape CI noise out).
        A, b, warm = spd_problem(batch=1500, f=32, seed=1)
        cfg = CGConfig(max_iters=6, tol=1e-5)

        def best_of(k, fn):
            best = float("inf")
            for _ in range(k):
                t0 = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - t0)
            return best

        legacy = best_of(5, lambda: cg_solve_batched(
            A, b, x0=warm, config=cfg, precision=Precision.FP16,
            compact=False, backend="reference",
        ))
        ws = Workspace()
        out = np.empty_like(b)

        def fused():
            cg_solve_batched(
                A, b, x0=warm, config=cfg, precision=Precision.FP16,
                workspace=ws, out=out, backend="fused",
            )

        fused()  # warm
        assert legacy / best_of(5, fused) >= 1.1


@pytest.fixture(scope="module")
def ratings():
    return generate_ratings(SyntheticConfig(m=200, n=50, nnz=2_000, seed=4))


class TestAutotunedCGCandidates:
    def test_sweeps_backend_compact_cross(self, ratings):
        report = autotune_plan(ratings, 8, warmup_nnz=500, repeats=1, workers=0)
        swept = {(b, c) for b, c, _ in report.cg_timings}
        assert swept == {
            (b, c) for b in CG_BACKENDS for c in (None, True)
        }
        assert all(s >= 0.0 for _, _, s in report.cg_timings)

    def test_winner_is_fastest_cg_candidate(self, ratings):
        report = autotune_plan(ratings, 8, warmup_nnz=500, repeats=1, workers=0)
        best = min(report.cg_timings, key=lambda t: t[2])
        assert (report.plan.cg_backend, report.plan.compact_cg) == best[:2]

    def test_skipping_sweep_keeps_reference_defaults(self, ratings):
        report = autotune_plan(
            ratings, 8, warmup_nnz=500, repeats=1, workers=0, cg_backends=()
        )
        assert report.cg_timings == ()
        assert report.plan.cg_backend == "reference"
        assert report.plan.compact_cg is None

    def test_unknown_backend_rejected(self, ratings):
        with pytest.raises(ValueError, match="unknown CG backend"):
            autotune_plan(ratings, 8, cg_backends=("nope",))

    def test_report_dict_carries_cg_timings(self, ratings):
        payload = autotune_plan(
            ratings, 8, warmup_nnz=500, repeats=1, workers=0
        ).as_dict()
        assert {"backend", "compact", "seconds"} == set(payload["cg_timings"][0])


class TestPlanRoundTrip:
    def test_selected_plan_round_trips_through_json(self, ratings):
        plan = autotune_plan(
            ratings, 8, warmup_nnz=500, repeats=1, workers=0
        ).plan
        revived = RuntimePlan.from_dict(json.loads(json.dumps(plan.as_dict())))
        assert revived == plan

    @pytest.mark.parametrize("backend", CG_BACKENDS)
    @pytest.mark.parametrize("compact", [None, True, False])
    def test_every_backend_compact_pair_round_trips(self, backend, compact):
        plan = RuntimePlan(cg_backend=backend, compact_cg=compact)
        assert RuntimePlan.from_dict(plan.as_dict()) == plan

    def test_pre_backend_reports_load_with_defaults(self):
        # Reports written before cg_backend existed must still load.
        legacy = RuntimePlan().as_dict()
        del legacy["cg_backend"]
        assert RuntimePlan.from_dict(legacy).cg_backend == "reference"

    def test_unknown_keys_rejected(self):
        payload = RuntimePlan().as_dict() | {"cg_backnd": "fused"}
        with pytest.raises(ValueError, match="cg_backnd"):
            RuntimePlan.from_dict(payload)

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="cg_backend"):
            RuntimePlan(cg_backend="nope")


class TestBenchEmitsCGSection:
    @pytest.fixture(scope="class")
    def result(self):
        return run_bench(TINY, workers=0)

    def test_cg_section_present_with_speedup(self, result):
        section = result["sections"]["cg"]
        assert section["speedup"] > 0
        assert section["legacy_seconds"] > 0
        assert result["plan"]["cg_backend"] in CG_BACKENDS

    def test_autotune_payload_reports_cg_sweep(self, result):
        assert result["autotune"]["cg_timings"], (
            "bench must measure CG candidates, not only hermitian methods"
        )

    def test_committed_baseline_gates_cg_floor(self, result):
        # The committed baseline demands >= 2x at the bench shape; prove
        # the gate machinery *would* fail a regressed cg section rather
        # than asserting tiny-shape timings here.
        baseline = {
            "schema": "repro.bench-baseline/v1",
            "tolerance": 0.0,
            "sections": {"cg": {"speedup": result["sections"]["cg"]["speedup"]}},
        }
        ok, messages = compare_against(result, baseline)
        assert any("cg" in m and m.startswith("PASS") for m in messages)
        regressed = dict(result)
        regressed["sections"] = dict(result["sections"])
        regressed["sections"]["cg"] = dict(result["sections"]["cg"])
        regressed["sections"]["cg"]["speedup"] = (
            result["sections"]["cg"]["speedup"] * 0.5
        )
        ok, messages = compare_against(regressed, baseline)
        assert not ok
        assert any("FAIL cg" in m for m in messages)

    def test_committed_baseline_requires_2x_cg(self):
        committed = json.loads(
            (Path(__file__).parents[2] / "benchmarks" / "baseline.json")
            .read_text()
        )
        assert committed["sections"]["cg"]["speedup"] >= 2.0
