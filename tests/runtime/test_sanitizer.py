"""Tests for the runtime ArenaSanitizer (``REPRO_SANITIZE=1``).

Unit tests for every check, plus the two end-to-end properties: a clean
half-step runs violation-free under the sanitizer with bit-identical
results, and seeded violations (overlapping spans, a stale workspace
view, an out-of-slice write) raise :class:`SanitizerError`.
"""

import numpy as np
import pytest

from repro.core.config import CGConfig, Precision
from repro.data import SyntheticConfig, generate_ratings
from repro.runtime import RuntimePlan, ShardExecutor, Workspace
from repro.runtime import executor as executor_mod
from repro.runtime import sanitizer
from repro.runtime.sanitizer import (
    SanitizerError,
    SliceWitness,
    check_no_overlap,
    check_shard_bounds,
    check_spans,
    sanitizer_enabled,
)

LAM = 0.08
CG = CGConfig(max_iters=5, tol=1e-5)


@pytest.fixture
def sanitized(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    baseline = len(sanitizer.report_log)
    yield
    # fail-fast contract: every logged report must have raised, and no
    # check may append without raising
    del baseline


@pytest.fixture(scope="module")
def problem():
    ratings = generate_ratings(SyntheticConfig(m=60, n=24, nnz=600, seed=9))
    rng = np.random.default_rng(3)
    theta = rng.normal(0, 0.1, (24, 8)).astype(np.float32)
    warm = rng.normal(0, 0.1, (60, 8)).astype(np.float32)
    return ratings, theta, warm


class TestEnabled:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not sanitizer_enabled()

    def test_on_with_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitizer_enabled()

    def test_other_values_do_not_enable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "yes")
        assert not sanitizer_enabled()


class TestOverlap:
    def test_raises_on_shared_memory(self):
        buf = np.zeros(10, dtype=np.float32)
        with pytest.raises(SanitizerError, match="shares memory"):
            check_no_overlap("dst", buf[:5], [("src", buf[4:])])

    def test_disjoint_views_pass(self):
        buf = np.zeros(10, dtype=np.float32)
        check_no_overlap("dst", buf[:5], [("src", buf[5:])])

    def test_none_operands_skipped(self):
        check_no_overlap("dst", np.zeros(3), [("maybe", None)])

    def test_violation_is_logged(self):
        buf = np.zeros(4)
        before = len(sanitizer.report_log)
        with pytest.raises(SanitizerError):
            check_no_overlap("dst", buf, [("src", buf)])
        assert len(sanitizer.report_log) == before + 1


class TestBoundsAndSpans:
    def test_in_bounds_slice_passes(self):
        check_shard_bounds(2, 5, 10, context="t")

    @pytest.mark.parametrize("lo, hi", [(-1, 5), (5, 2), (0, 11)])
    def test_bad_slices_raise(self, lo, hi):
        with pytest.raises(SanitizerError, match="escapes"):
            check_shard_bounds(lo, hi, 10, context="t")

    def test_contiguous_cover_passes(self):
        check_spans([(0, 4), (4, 7), (7, 10)], 10, context="t")

    def test_gap_raises(self):
        with pytest.raises(SanitizerError, match="disjoint"):
            check_spans([(0, 4), (5, 10)], 10, context="t")

    def test_overlap_raises(self):
        with pytest.raises(SanitizerError, match="disjoint"):
            check_spans([(0, 5), (4, 10)], 10, context="t")

    def test_short_cover_raises(self):
        with pytest.raises(SanitizerError, match="cover"):
            check_spans([(0, 4), (4, 8)], 10, context="t")


class TestSliceWitness:
    def test_in_slice_write_passes(self):
        out = np.zeros((10, 3), dtype=np.float32)
        w = SliceWitness(out, 3, 6)
        out[3:6] = 7.0
        w.verify(context="t")

    def test_write_below_slice_raises(self):
        out = np.zeros((10, 3), dtype=np.float32)
        w = SliceWitness(out, 3, 6)
        out[1] = 7.0
        with pytest.raises(SanitizerError, match="below"):
            w.verify(context="t")

    def test_write_beyond_slice_raises(self):
        out = np.zeros((10, 3), dtype=np.float32)
        w = SliceWitness(out, 3, 6)
        out[8] = 7.0
        with pytest.raises(SanitizerError, match="beyond"):
            w.verify(context="t")

    def test_nan_garbage_outside_slice_tolerated(self):
        # persistent buffers start as np.empty garbage that may hold NaN
        out = np.full((10, 3), np.nan, dtype=np.float32)
        w = SliceWitness(out, 3, 6)
        out[3:6] = 1.0
        w.verify(context="t")


class TestGenerations:
    def test_generation_bumps_on_grow_not_reuse(self):
        ws = Workspace()
        ws.request("k", (4,))
        g = ws.generation("k")
        ws.request("k", (2,))  # smaller: served from cache
        assert ws.generation("k") == g
        ws.request("k", (64,))  # grows: realloc
        assert ws.generation("k") == g + 1

    def test_release_invalidates(self):
        ws = Workspace()
        ws.request("k", (4,))
        g = ws.generation("k")
        ws.release()
        assert ws.generation("k") == g + 1

    def test_check_current_noop_when_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        ws = Workspace()
        ws.request("k", (4,))
        ws.check_current("k", token=999, context="t")  # stale but unsanitized

    def test_check_current_raises_on_stale_token(self, sanitized):
        ws = Workspace()
        ws.request("k", (4,))
        token = ws.generation("k")
        ws.request("k", (64,))  # regrow: the old view is dead
        with pytest.raises(SanitizerError, match="reallocated or released"):
            ws.check_current("k", token, context="t")

    def test_check_current_passes_on_live_token(self, sanitized):
        ws = Workspace()
        ws.request("k", (4,))
        ws.check_current("k", ws.generation("k"), context="t")


class TestExecutorUnderSanitizer:
    @pytest.mark.parametrize("plan", [
        RuntimePlan(),
        RuntimePlan(shards=4),
        RuntimePlan(shards=3, workers=2),
    ], ids=["serial", "sharded", "forked"])
    def test_clean_half_step_is_violation_free(
        self, problem, plan, sanitized, monkeypatch
    ):
        ratings, theta, warm = problem
        before = len(sanitizer.report_log)
        with ShardExecutor(plan) as ex:
            result = ex.half_step(
                ratings, theta, warm, lam=LAM, cg_config=CG,
                precision=Precision.FP16,
            )
        assert len(sanitizer.report_log) == before
        assert np.all(np.isfinite(result.factors))

    def test_sanitizer_does_not_change_results(self, problem, monkeypatch):
        ratings, theta, warm = problem
        with ShardExecutor(RuntimePlan(shards=3)) as ex:
            monkeypatch.delenv("REPRO_SANITIZE", raising=False)
            plain = ex.half_step(
                ratings, theta, warm, lam=LAM, cg_config=CG,
                precision=Precision.FP16,
            ).factors.copy()
        with ShardExecutor(RuntimePlan(shards=3)) as ex:
            monkeypatch.setenv("REPRO_SANITIZE", "1")
            checked = ex.half_step(
                ratings, theta, warm, lam=LAM, cg_config=CG,
                precision=Precision.FP16,
            ).factors.copy()
        assert np.array_equal(plain, checked)

    def test_seeded_overlapping_spans_caught(
        self, problem, sanitized, monkeypatch
    ):
        ratings, theta, warm = problem

        def bad_partition(row_ptr, shards):
            m = len(row_ptr) - 1
            half = m // 2
            return [(0, half + 5), (half, m)]  # overlap: rows raced

        monkeypatch.setattr(executor_mod, "partition_rows", bad_partition)
        with ShardExecutor(RuntimePlan(shards=2)) as ex:
            with pytest.raises(SanitizerError, match="disjoint"):
                ex.half_step(
                    ratings, theta, warm, lam=LAM, cg_config=CG,
                    precision=Precision.FP16,
                )

    def test_seeded_out_of_slice_write_caught(
        self, problem, sanitized, monkeypatch
    ):
        ratings, theta, warm = problem
        real_solve = executor_mod.cg_solve_batched

        def leaky_solve(A, b, **kw):
            out = kw.get("out")
            result = real_solve(A, b, **kw)
            if out is not None and out.base is not None:
                out.base[0, 0] += 1.0  # stomp a row outside the slice
            return result

        monkeypatch.setattr(executor_mod, "cg_solve_batched", leaky_solve)
        with ShardExecutor(RuntimePlan(shards=3)) as ex:
            with pytest.raises(SanitizerError, match="shard slice"):
                ex.half_step(
                    ratings, theta, warm, lam=LAM, cg_config=CG,
                    precision=Precision.FP16,
                )
