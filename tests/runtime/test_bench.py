"""Tests for the perf-regression bench harness and its baseline gate."""

import json

import pytest

from repro.runtime.bench import (
    BASELINE_SCHEMA,
    QUICK_BENCH,
    SCHEMA,
    BenchConfig,
    compare_against,
    run_bench,
    write_report,
)

TINY = BenchConfig(
    m=250, n=60, nnz=1_800, f=8, repeats=1, cg_iters=3,
    catalog_items=3_000, retrieval_users=128, retrieval_requests=32,
    retrieval_batch=8, retrieval_k=5,
    fleet_users=64, fleet_items=256, fleet_requests=32, fleet_batch=8,
    fleet_workers=2, fleet_k=5,
)


@pytest.fixture(scope="module")
def result():
    return run_bench(TINY, workers=0)


def make_baseline(**sections):
    return {
        "schema": BASELINE_SCHEMA,
        "tolerance": 0.25,
        "sections": {
            name: {"speedup": ref} for name, ref in sections.items()
        },
    }


class TestRunBench:
    def test_report_shape(self, result):
        assert result["schema"] == SCHEMA
        assert set(result["sections"]) == {
            "hermitian", "cg", "epoch", "retrieval", "fleet", "ingest"
        }
        for section in result["sections"].values():
            assert section["legacy_seconds"] > 0
            assert section["optimized_seconds"] > 0
            assert section["speedup"] > 0
        assert result["config"] == TINY.as_dict()
        assert result["plan"] == result["autotune"]["plan"]

    def test_retrieval_section_shape(self, result):
        retrieval = result["sections"]["retrieval"]
        assert retrieval["items"] == TINY.catalog_items
        assert retrieval["k"] == TINY.retrieval_k
        assert retrieval["ncells"] >= 1
        assert 1 <= retrieval["nprobe"] <= retrieval["ncells"]
        assert retrieval["build_seconds"] > 0
        assert 0.0 < retrieval["scored_fraction"] <= 1.0
        assert 0.0 <= retrieval["recall_at_k"] <= 1.0

    def test_fleet_section_shape(self, result):
        fleet = result["sections"]["fleet"]
        assert fleet["workers"] == TINY.fleet_workers
        assert fleet["requests"] == TINY.fleet_requests
        assert fleet["requests_per_s"] > 0
        assert fleet["legacy_requests_per_s"] > 0
        assert fleet["deadline_misses"] >= 0
        assert 0.0 <= fleet["deadline_miss_rate"] <= 1.0
        assert fleet["p99_latency_ticks"] is None or (
            fleet["p99_latency_ticks"] >= 0
        )

    def test_ingest_section_shape(self, result):
        ingest = result["sections"]["ingest"]
        assert ingest["delta_ratings"] == TINY.ingest_delta_ratings
        assert ingest["shards"] == TINY.ingest_shards
        assert ingest["rows_folded"] > 0
        assert ingest["foldin_ms"] > 0
        assert ingest["foldin_ms"] == ingest["optimized_seconds"] * 1e3

    def test_optimized_path_matches_legacy(self, result):
        assert result["numerics"]["equivalent"] is True

    def test_zero_steady_state_allocations(self, result):
        """The acceptance criterion, measured end-to-end by the harness."""
        assert result["arena"]["steady_state_allocations"] == 0
        assert result["arena"]["resident_bytes"] > 0
        assert result["arena"]["peak_resident_bytes"] >= (
            result["arena"]["resident_bytes"]
        )
        assert result["arena"]["retrieval_steady_state_allocations"] == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BenchConfig(m=0)
        with pytest.raises(ValueError):
            BenchConfig(repeats=0)
        with pytest.raises(ValueError):
            BenchConfig(lam=-0.1)
        with pytest.raises(ValueError):
            BenchConfig(catalog_items=0)
        with pytest.raises(ValueError):
            BenchConfig(retrieval_k=0)
        assert QUICK_BENCH.repeats >= 1


class TestCompareAgainst:
    def test_passes_within_tolerance(self, result):
        baseline = make_baseline(
            **{k: 1e-6 for k in result["sections"]}
        )
        ok, messages = compare_against(result, baseline)
        assert ok
        assert all(m.startswith("PASS") for m in messages)

    def test_fails_on_regression(self, result):
        baseline = make_baseline(hermitian=1e9)
        ok, messages = compare_against(result, baseline)
        assert not ok
        assert any(m.startswith("FAIL hermitian") for m in messages)

    def test_fails_on_missing_section(self, result):
        baseline = make_baseline(warp_shuffle=1.0)
        ok, messages = compare_against(result, baseline)
        assert not ok
        assert any("missing" in m for m in messages)

    def test_fails_on_steady_state_allocations(self, result):
        dirty = dict(result, arena={"steady_state_allocations": 3})
        ok, messages = compare_against(dirty, make_baseline())
        assert not ok
        assert any("FAIL arena" in m for m in messages)

    def test_recall_floor_passes_when_met(self, result):
        baseline = make_baseline(retrieval=1e-6)
        baseline["sections"]["retrieval"]["recall_floor"] = 0.0
        ok, messages = compare_against(result, baseline)
        assert ok
        assert any("recall@k" in m and m.startswith("PASS") for m in messages)

    def test_recall_floor_is_a_hard_floor(self, result):
        # The floor ignores the tolerance band entirely: a measured
        # recall below it fails even at the widest allowed tolerance.
        dirty = dict(result)
        dirty["sections"] = dict(result["sections"])
        dirty["sections"]["retrieval"] = dict(
            result["sections"]["retrieval"], recall_at_k=0.10
        )
        baseline = make_baseline(retrieval=1e-6)
        baseline["sections"]["retrieval"]["recall_floor"] = 0.95
        ok, messages = compare_against(dirty, baseline, tolerance=0.99)
        assert not ok
        assert any(
            m.startswith("FAIL retrieval") and "recall@k" in m
            for m in messages
        )

    def test_deadline_miss_ceiling_passes_when_met(self, result):
        baseline = make_baseline(fleet=1e-6)
        baseline["sections"]["fleet"]["deadline_miss_ceiling"] = 1.0
        ok, messages = compare_against(result, baseline)
        assert ok
        assert any(
            "deadline-miss" in m and m.startswith("PASS") for m in messages
        )

    def test_deadline_miss_ceiling_is_a_hard_gate(self, result):
        # Like recall_floor, the ceiling ignores the tolerance band: a
        # measured miss rate above it fails at any tolerance.
        dirty = dict(result)
        dirty["sections"] = dict(result["sections"])
        dirty["sections"]["fleet"] = dict(
            result["sections"]["fleet"], deadline_miss_rate=0.5
        )
        baseline = make_baseline(fleet=1e-6)
        baseline["sections"]["fleet"]["deadline_miss_ceiling"] = 0.01
        ok, messages = compare_against(dirty, baseline, tolerance=0.99)
        assert not ok
        assert any(
            m.startswith("FAIL fleet") and "deadline-miss" in m
            for m in messages
        )

    def test_foldin_ceiling_passes_when_met(self, result):
        baseline = make_baseline(ingest=1e-6)
        baseline["sections"]["ingest"]["foldin_ms_ceiling"] = 1e9
        ok, messages = compare_against(result, baseline)
        assert ok
        assert any(
            "fold-in latency" in m and m.startswith("PASS") for m in messages
        )

    def test_foldin_ceiling_is_a_hard_gate(self, result):
        dirty = dict(result)
        dirty["sections"] = dict(result["sections"])
        dirty["sections"]["ingest"] = dict(
            result["sections"]["ingest"], foldin_ms=5_000.0
        )
        baseline = make_baseline(ingest=1e-6)
        baseline["sections"]["ingest"]["foldin_ms_ceiling"] = 100.0
        ok, messages = compare_against(dirty, baseline, tolerance=0.99)
        assert not ok
        assert any(
            m.startswith("FAIL ingest") and "fold-in latency" in m
            for m in messages
        )

    def test_foldin_ceiling_fails_when_latency_missing(self, result):
        dirty = dict(result)
        dirty["sections"] = dict(result["sections"])
        ingest = dict(result["sections"]["ingest"])
        ingest.pop("foldin_ms")
        dirty["sections"]["ingest"] = ingest
        baseline = make_baseline(ingest=1e-6)
        baseline["sections"]["ingest"]["foldin_ms_ceiling"] = 1e9
        ok, messages = compare_against(dirty, baseline)
        assert not ok
        assert any("missing" in m and "fold-in" in m for m in messages)

    def test_deadline_miss_ceiling_fails_when_rate_missing(self, result):
        dirty = dict(result)
        dirty["sections"] = dict(result["sections"])
        fleet = dict(result["sections"]["fleet"])
        fleet.pop("deadline_miss_rate")
        dirty["sections"]["fleet"] = fleet
        baseline = make_baseline(fleet=1e-6)
        baseline["sections"]["fleet"]["deadline_miss_ceiling"] = 0.01
        ok, messages = compare_against(dirty, baseline)
        assert not ok

    def test_fails_on_retrieval_steady_state_allocations(self, result):
        dirty = dict(
            result,
            arena=dict(result["arena"], retrieval_steady_state_allocations=2),
        )
        ok, messages = compare_against(dirty, make_baseline())
        assert not ok
        assert any("retrieval" in m and m.startswith("FAIL") for m in messages)

    def test_fails_on_numeric_divergence(self, result):
        dirty = dict(result, numerics={"equivalent": False})
        ok, messages = compare_against(dirty, make_baseline())
        assert not ok
        assert any("FAIL numerics" in m for m in messages)

    def test_rejects_wrong_schema(self, result):
        with pytest.raises(ValueError):
            compare_against(result, {"schema": "bogus"})

    def test_rejects_bad_tolerance(self, result):
        with pytest.raises(ValueError):
            compare_against(result, make_baseline(), tolerance=1.5)

    def test_tolerance_override_widens_the_floor(self, result):
        slow = min(s["speedup"] for s in result["sections"].values())
        baseline = make_baseline(
            **{k: slow * 1.05 for k in result["sections"]}
        )
        ok_strict, _ = compare_against(result, baseline, tolerance=0.0)
        ok_loose, _ = compare_against(result, baseline, tolerance=0.5)
        assert not ok_strict
        assert ok_loose


class TestWriteReport:
    def test_round_trips_json(self, result, tmp_path):
        path = write_report(result, tmp_path / "BENCH_runtime.json")
        assert json.loads(path.read_text()) == result
