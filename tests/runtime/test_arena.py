"""Tests for the workspace arena: reuse, growth, and the counters."""

import numpy as np

from repro.runtime import Workspace


class TestRequest:
    def test_shape_dtype_contiguity(self):
        ws = Workspace()
        buf = ws.request("a", (3, 5), np.float64)
        assert buf.shape == (3, 5)
        assert buf.dtype == np.float64
        assert buf.flags.c_contiguous

    def test_same_request_reuses_storage(self):
        ws = Workspace()
        first = ws.request("a", (4, 4))
        first.fill(7.0)
        second = ws.request("a", (4, 4))
        assert ws.allocations == 1
        assert ws.reuses == 1
        # Same backing memory: the earlier write is visible.
        assert np.all(second == 7.0)

    def test_smaller_request_served_from_cache(self):
        ws = Workspace()
        ws.request("a", (100,))
        ws.request("a", (10,))
        assert ws.allocations == 1
        assert ws.reuses == 1

    def test_larger_request_regrows(self):
        ws = Workspace()
        ws.request("a", (10,))
        ws.request("a", (100,))
        assert ws.allocations == 2
        assert ws.reuses == 0

    def test_distinct_names_distinct_buffers(self):
        ws = Workspace()
        a = ws.request("a", (8,))
        b = ws.request("b", (8,))
        a.fill(1.0)
        b.fill(2.0)
        assert np.all(ws.request("a", (8,)) == 1.0)
        assert np.all(ws.request("b", (8,)) == 2.0)

    def test_dtype_reinterprets_same_storage(self):
        ws = Workspace()
        ws.request("a", (4,), np.float64)  # 32 bytes
        again = ws.request("a", (8,), np.float32)  # same 32 bytes
        assert ws.allocations == 1
        assert again.dtype == np.float32

    def test_scalar_shape(self):
        ws = Workspace()
        assert ws.request("s", ()).shape == ()


class TestZeros:
    def test_zero_filled_without_new_allocation(self):
        ws = Workspace()
        ws.request("a", (16,)).fill(3.0)
        z = ws.zeros("a", (16,))
        assert np.all(z == 0.0)
        assert ws.allocations == 1


class TestAccounting:
    def test_bytes_allocated_counts_backing_storage(self):
        ws = Workspace()
        ws.request("a", (10,), np.float32)
        assert ws.bytes_allocated == 40
        assert ws.resident_bytes == 40

    def test_reset_counters_keeps_buffers(self):
        ws = Workspace()
        ws.request("a", (10,))
        ws.reset_counters()
        assert ws.allocations == 0
        assert ws.resident_bytes == 40
        ws.request("a", (10,))
        assert ws.allocations == 0
        assert ws.reuses == 1

    def test_release_drops_everything(self):
        ws = Workspace()
        ws.request("a", (10,))
        ws.release()
        assert ws.resident_bytes == 0
        ws.request("a", (10,))
        assert ws.allocations == 1
