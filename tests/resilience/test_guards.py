"""Numeric guards: sentinels and the degradation ladder."""

import numpy as np
import pytest

from repro.core.cg import cg_solve_batched
from repro.core.config import CGConfig, Precision
from repro.resilience.guards import (
    GuardPolicy,
    NumericalFault,
    check_factors_finite,
    check_normal_equations,
    guarded_solve,
)


def spd_batch(batch=4, f=6, seed=0):
    rng = np.random.default_rng(seed)
    Q, _ = np.linalg.qr(rng.normal(size=(batch, f, f)))
    eigs = np.linspace(1.0, 3.0, f)
    A = ((Q * eigs) @ np.swapaxes(Q, 1, 2)).astype(np.float32)
    A = (A + np.swapaxes(A, 1, 2)) * np.float32(0.5)
    b = rng.normal(size=(batch, f)).astype(np.float32)
    return A, b


class TestSentinels:
    def test_clean_inputs_pass(self):
        A, b = spd_batch()
        check_normal_equations(A, b)

    def test_nan_in_A_names_the_lane(self):
        A, b = spd_batch()
        A[2, 0, 0] = np.nan
        with pytest.raises(NumericalFault) as err:
            check_normal_equations(A, b, row_offset=10)
        assert err.value.lanes == (12,)
        assert err.value.stage == "hermitian"

    def test_inf_in_b_names_the_lane(self):
        A, b = spd_batch()
        b[1, 3] = np.inf
        with pytest.raises(NumericalFault) as err:
            check_normal_equations(A, b)
        assert err.value.lanes == (1,)

    def test_factor_sentinel(self):
        factors = np.ones((5, 3), dtype=np.float32)
        check_factors_finite(factors, stage="direct-solve")
        factors[4, 1] = np.nan
        with pytest.raises(NumericalFault) as err:
            check_factors_finite(factors, stage="direct-solve", row_offset=100)
        assert err.value.lanes == (104,)
        assert err.value.stage == "direct-solve"


class TestGuardedSolve:
    def test_clean_path_matches_plain_cg(self):
        A, b = spd_batch()
        cfg = CGConfig(max_iters=6, tol=1e-5)
        ref = cg_solve_batched(A, b, config=cfg, precision=Precision.FP32)
        out = np.empty_like(b)
        iters, matvecs = guarded_solve(
            A, b, None, out,
            policy=GuardPolicy(), cg_config=cfg, precision=Precision.FP32,
        )
        np.testing.assert_array_equal(out, ref.x)
        assert (iters, matvecs) == (ref.iterations, ref.matvec_count)

    def test_corrupted_lane_repaired_bit_exact(self):
        # Corrupt the *staged* store of one lane; the ladder re-solves it
        # from the pristine A, so the result must match the clean solve
        # bit-for-bit (per-lane CG arithmetic is batch-independent).
        A, b = spd_batch()
        cfg = CGConfig(max_iters=6, tol=1e-5)
        ref = cg_solve_batched(A, b, config=cfg, precision=Precision.FP32)

        def corrupt(store):
            store[1] = np.nan

        out = np.empty_like(b)
        events = []
        guarded_solve(
            A, b, None, out,
            policy=GuardPolicy(), cg_config=cfg, precision=Precision.FP32,
            fault_hook=corrupt, row_offset=20, events=events,
        )
        np.testing.assert_array_equal(out, ref.x)
        kinds = [e["kind"] for e in events]
        assert kinds == ["guard.quarantine", "guard.repair-fp32"]
        assert events[0]["lanes"] == [21]

    def test_breakdown_falls_back_to_lu(self):
        # A negative-definite lane breaks CG (p·Ap < 0) at any precision;
        # LU has no curvature assumption and must repair it.
        A, b = spd_batch()
        A[3] = -A[3]
        cfg = CGConfig(max_iters=6, tol=1e-5)
        out = np.empty_like(b)
        events = []
        guarded_solve(
            A, b, None, out,
            policy=GuardPolicy(), cg_config=cfg, precision=Precision.FP32,
            events=events,
        )
        assert np.isfinite(out).all()
        np.testing.assert_allclose(
            np.einsum("ij,j->i", A[3], out[3]), b[3], rtol=1e-4, atol=1e-4
        )
        assert "guard.repair-lu" in [e["kind"] for e in events]

    def test_unrepairable_raises_with_provenance(self):
        # Pristine inputs already non-finite: every rung fails and the
        # fault must name the surviving lane.
        A, b = spd_batch()
        A[0] = np.nan
        out = np.empty_like(b)
        with pytest.raises(NumericalFault) as err:
            guarded_solve(
                A, b, None, out,
                policy=GuardPolicy(), cg_config=CGConfig(max_iters=4),
                precision=Precision.FP32, row_offset=7,
            )
        assert err.value.lanes == (7,)
        assert err.value.stage == "solve"

    def test_fp16_lane_never_returns_nonfinite(self):
        A, b = spd_batch(seed=5)

        def corrupt(store):
            store[0] = np.inf
            store[2] = np.nan

        out = np.empty_like(b)
        guarded_solve(
            A, b, None, out,
            policy=GuardPolicy(), cg_config=CGConfig(max_iters=4),
            precision=Precision.FP16, fault_hook=corrupt,
        )
        assert np.isfinite(out).all()


class TestGuardPolicy:
    def test_divergence_factor_validated(self):
        with pytest.raises(ValueError, match="divergence_factor"):
            GuardPolicy(divergence_factor=1.0)

    def test_methods_bind_the_module_functions(self):
        A, b = spd_batch()
        policy = GuardPolicy()
        policy.check_normal(A, b)
        policy.check_factors(b, stage="test")
        out = np.empty_like(b)
        iters, matvecs = policy.solve(
            A, b, None, out, cg_config=CGConfig(max_iters=4),
            precision=Precision.FP32,
        )
        assert iters >= 1 and matvecs >= 1
