"""Checkpoints: atomic, checksummed, resumable."""

import os

import numpy as np
import pytest

from repro.resilience.checkpoint import (
    Checkpoint,
    CheckpointError,
    CheckpointManager,
    latest_checkpoint,
    list_checkpoints,
    load_checkpoint,
    prune_checkpoints,
    save_checkpoint,
)


def make_checkpoint(epoch=3, seed=0):
    rng = np.random.default_rng(seed)
    return Checkpoint(
        epoch=epoch,
        x=rng.normal(size=(8, 4)).astype(np.float32),
        theta=rng.normal(size=(6, 4)).astype(np.float32),
        clock=12.5,
        rng_state=rng.bit_generator.state,
        curve=[{"epoch": 1, "seconds": 1.0, "rmse": 0.9, "train_rmse": 0.8}],
        breakdowns=[{"get_hermitian": 0.5, "get_bias": 0.1, "solve": 0.4}],
        health=[{"kind": "checkpoint.saved", "detail": "x"}],
        extra={"precision": "fp16", "solver": "cg"},
    )


class TestValidation:
    def test_negative_epoch_rejected(self):
        ckpt = make_checkpoint()
        with pytest.raises(ValueError, match="epoch"):
            Checkpoint(epoch=-1, x=ckpt.x, theta=ckpt.theta)

    def test_factor_rank_mismatch_rejected(self):
        ckpt = make_checkpoint()
        with pytest.raises(ValueError, match="factor"):
            Checkpoint(epoch=1, x=ckpt.x, theta=ckpt.theta[:, :-1])


class TestRoundTrip:
    def test_everything_survives(self, tmp_path):
        ckpt = make_checkpoint()
        path = save_checkpoint(tmp_path, ckpt)
        assert os.path.basename(path) == "ckpt-000003.npz"
        back = load_checkpoint(path)
        np.testing.assert_array_equal(back.x, ckpt.x)
        np.testing.assert_array_equal(back.theta, ckpt.theta)
        assert back.epoch == ckpt.epoch
        assert back.clock == ckpt.clock
        assert back.rng_state == ckpt.rng_state
        assert back.curve == ckpt.curve
        assert back.breakdowns == ckpt.breakdowns
        assert back.health == ckpt.health
        assert back.extra == ckpt.extra

    def test_rng_state_drives_identical_draws(self, tmp_path):
        rng = np.random.default_rng(7)
        rng.normal(size=10)  # advance
        ckpt = make_checkpoint()
        ckpt.rng_state = rng.bit_generator.state
        expected = rng.normal(size=5)
        back = load_checkpoint(load_path := save_checkpoint(tmp_path, ckpt))
        rng2 = np.random.default_rng(0)
        rng2.bit_generator.state = back.rng_state
        np.testing.assert_array_equal(rng2.normal(size=5), expected)
        assert load_path.endswith(".npz")

    def test_no_temp_files_left(self, tmp_path):
        save_checkpoint(tmp_path, make_checkpoint())
        assert sorted(p.name for p in tmp_path.iterdir()) == ["ckpt-000003.npz"]


class TestDiscovery:
    def test_list_sorted_by_epoch(self, tmp_path):
        for epoch in (7, 2, 11):
            save_checkpoint(tmp_path, make_checkpoint(epoch=epoch))
        names = [os.path.basename(p) for p in list_checkpoints(tmp_path)]
        assert names == ["ckpt-000002.npz", "ckpt-000007.npz", "ckpt-000011.npz"]

    def test_latest(self, tmp_path):
        assert latest_checkpoint(tmp_path) is None
        for epoch in (1, 5, 3):
            save_checkpoint(tmp_path, make_checkpoint(epoch=epoch))
        assert os.path.basename(latest_checkpoint(tmp_path)) == "ckpt-000005.npz"

    def test_foreign_files_ignored(self, tmp_path):
        (tmp_path / "notes.txt").write_text("hi")
        (tmp_path / "ckpt-zzz.npz").write_bytes(b"junk")
        save_checkpoint(tmp_path, make_checkpoint(epoch=1))
        assert len(list_checkpoints(tmp_path)) == 1

    def test_latest_of_missing_directory(self, tmp_path):
        assert latest_checkpoint(tmp_path / "nope") is None


class TestCorruption:
    def test_truncated_checkpoint_rejected(self, tmp_path):
        path = save_checkpoint(tmp_path, make_checkpoint())
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError, match="corrupt|truncated"):
            load_checkpoint(path)

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "ckpt-000001.npz"
        path.write_bytes(b"garbage")
        with pytest.raises(CheckpointError, match="corrupt|truncated"):
            load_checkpoint(path)

    def test_stale_checksum_rejected(self, tmp_path):
        path = save_checkpoint(tmp_path, make_checkpoint())
        with np.load(path) as z:
            data = dict(z)
        data["x"] = data["x"].copy()
        data["x"][0, 0] += 1.0  # corrupt a value, keep the old checksums
        np.savez(path, **data)
        with pytest.raises(CheckpointError, match="checksum"):
            load_checkpoint(path)

    def test_unknown_schema_rejected(self, tmp_path):
        import json

        path = save_checkpoint(tmp_path, make_checkpoint())
        with np.load(path) as z:
            data = dict(z)
        header = json.loads(bytes(data["header"].tobytes()).decode())
        header["schema"] = 99
        header.pop("checksums", None)
        data["header"] = np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)
        np.savez(path, **data)
        with pytest.raises(CheckpointError, match="unsupported"):
            load_checkpoint(path)


class TestRetention:
    def save_epochs(self, directory, epochs):
        return [save_checkpoint(directory, make_checkpoint(epoch=e)) for e in epochs]

    def test_none_keeps_everything(self, tmp_path):
        self.save_epochs(tmp_path, range(1, 5))
        assert prune_checkpoints(tmp_path, None) == []
        assert len(list_checkpoints(tmp_path)) == 4

    def test_prunes_oldest_first(self, tmp_path):
        paths = self.save_epochs(tmp_path, range(1, 6))
        deleted = prune_checkpoints(tmp_path, 2)
        assert deleted == paths[:3]  # oldest victims, in deletion order
        assert list_checkpoints(tmp_path) == paths[3:]

    def test_under_budget_is_a_noop(self, tmp_path):
        self.save_epochs(tmp_path, range(1, 3))
        assert prune_checkpoints(tmp_path, 5) == []
        assert len(list_checkpoints(tmp_path)) == 2

    def test_invalid_budget_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="keep_last"):
            prune_checkpoints(tmp_path, 0)

    def test_vanished_victim_is_skipped(self, tmp_path):
        paths = self.save_epochs(tmp_path, range(1, 5))
        os.unlink(paths[0])  # concurrent prune got there first
        deleted = prune_checkpoints(tmp_path, 1)
        assert deleted == paths[1:3]

    def test_newest_survives_any_crash_prefix(self, tmp_path):
        # Crash-safety by construction: every prefix of the deletion
        # order leaves the newest checkpoint resumable.
        paths = self.save_epochs(tmp_path, range(1, 6))
        deleted = prune_checkpoints(tmp_path, 2)
        for prefix in range(len(deleted) + 1):
            survivors = [p for p in paths if p not in deleted[:prefix]]
            assert survivors[-1] == paths[-1]


class TestCheckpointManager:
    def test_save_enforces_budget(self, tmp_path):
        manager = CheckpointManager(str(tmp_path), keep_last=2)
        for epoch in range(1, 5):
            manager.save(make_checkpoint(epoch=epoch))
        assert len(manager.list()) == 2
        assert manager.load_latest().epoch == 4

    def test_unbounded_by_default(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        for epoch in range(1, 4):
            manager.save(make_checkpoint(epoch=epoch))
        assert len(manager.list()) == 3

    def test_empty_directory(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        assert manager.latest() is None
        assert manager.load_latest() is None

    def test_budget_validation(self, tmp_path):
        with pytest.raises(CheckpointError, match="keep_last"):
            CheckpointManager(str(tmp_path), keep_last=0)


class TestForeignFilenamePrune:
    def test_prune_ignores_streaming_artifacts(self, tmp_path):
        # A streaming directory interleaves full checkpoints with delta
        # checkpoints, corpus snapshots and WAL segments; retention must
        # only ever count (and delete) full checkpoints.
        paths = [
            save_checkpoint(tmp_path, make_checkpoint(epoch=e)) for e in (1, 2, 3)
        ]
        foreign = [
            tmp_path / "ckpt-000002.delta.npz",
            tmp_path / "corpus-000002.npz",
            tmp_path / "wal-000000.log",
            tmp_path / "notes.txt",
        ]
        for path in foreign:
            path.write_bytes(b"not a full checkpoint")
        deleted = prune_checkpoints(tmp_path, 1)
        assert deleted == paths[:2]
        assert list_checkpoints(tmp_path) == paths[2:]
        for path in foreign:
            assert path.exists()


class TestOrphanSweep:
    def test_sweeps_tmp_files_only(self, tmp_path):
        from repro.resilience.checkpoint import sweep_orphan_tmp

        keep = save_checkpoint(tmp_path, make_checkpoint(epoch=1))
        orphans = [tmp_path / "tmpabc123.tmp-npz", tmp_path / "old-layout.tmp"]
        for path in orphans:
            path.write_bytes(b"crash left me behind")
        deleted = sweep_orphan_tmp(tmp_path)
        assert sorted(deleted) == sorted(os.fspath(p) for p in orphans)
        assert not any(p.exists() for p in orphans)
        assert os.path.exists(keep)

    def test_missing_directory_is_empty(self, tmp_path):
        from repro.resilience.checkpoint import sweep_orphan_tmp

        assert sweep_orphan_tmp(tmp_path / "nope") == []

    def test_manager_sweeps_at_startup(self, tmp_path):
        orphan = tmp_path / "tmpxyz.tmp-npz"
        orphan.write_bytes(b"leak")
        CheckpointManager(os.fspath(tmp_path))
        assert not orphan.exists()
