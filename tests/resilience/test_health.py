"""RunHealth: the audit log every supervised run must balance."""

import json

import pytest

from repro.resilience.health import FAULT_KINDS, HealthEvent, RunHealth


class TestHealthEvent:
    def test_requires_kind(self):
        with pytest.raises(ValueError, match="kind"):
            HealthEvent(kind="")

    def test_rejects_negative_attempt(self):
        with pytest.raises(ValueError, match="attempt"):
            HealthEvent(kind="x", attempt=-1)

    def test_dict_round_trip(self):
        event = HealthEvent(
            kind="guard.quarantine", step=2, shard=1, attempt=0,
            lanes=(5, 9), detail="2 lanes",
        )
        assert HealthEvent.from_dict(event.as_dict()) == event


class TestRunHealth:
    def test_record_and_counts(self):
        health = RunHealth()
        health.record("fault.delay", step=0, shard=1)
        health.record("fault.delay", step=1, shard=0)
        health.record("supervise.retry", step=1, shard=0)
        assert health.counts() == {"fault.delay": 2, "supervise.retry": 1}
        assert len(health) == 3

    def test_extend_accepts_dicts_and_events(self):
        health = RunHealth()
        health.extend([
            {"kind": "fault.nan-flip", "step": 0, "shard": 0, "lanes": [3]},
            HealthEvent(kind="guard.repair-fp32", step=0, shard=0),
        ])
        assert [e.kind for e in health.events] == [
            "fault.nan-flip", "guard.repair-fp32",
        ]
        assert health.events[0].lanes == (3,)

    def test_fault_events_filters_to_fault_kinds(self):
        health = RunHealth()
        for kind in FAULT_KINDS:
            health.record(kind, step=0, shard=0)
        health.record("supervise.retry", step=0, shard=0)
        health.record("checkpoint.saved")
        assert {e.kind for e in health.fault_events()} == set(FAULT_KINDS)
        assert health.faults_injected == len(FAULT_KINDS)

    def test_account_balanced(self):
        health = RunHealth()
        health.record("fault.delay", step=0, shard=1)
        health.record("fault.worker-kill", step=2, shard=0)
        expected = [("fault.delay", 0, 1), ("fault.worker-kill", 2, 0)]
        assert health.account(expected) == ([], [])

    def test_account_reports_missing_and_extra(self):
        health = RunHealth()
        health.record("fault.delay", step=0, shard=0)
        health.record("fault.nan-flip", step=1, shard=1)
        missing, extra = health.account([("fault.delay", 0, 0), ("fault.delay", 3, 2)])
        assert missing == [("fault.delay", 3, 2)]
        assert extra == [("fault.nan-flip", 1, 1)]

    def test_account_counts_multiplicity(self):
        health = RunHealth()
        health.record("fault.delay", step=0, shard=0)
        missing, extra = health.account([("fault.delay", 0, 0), ("fault.delay", 0, 0)])
        assert missing == [("fault.delay", 0, 0)]
        assert extra == []

    def test_json_round_trip(self):
        health = RunHealth()
        health.record("guard.quarantine", step=1, shard=2, lanes=(4,), detail="x")
        data = json.loads(health.to_json())
        back = RunHealth.from_dict(data)
        assert back.events == health.events
