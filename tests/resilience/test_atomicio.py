"""Atomic archive plumbing: rename durability and directory fsync."""

import os

import numpy as np

from repro.resilience import atomicio
from repro.resilience.atomicio import atomic_savez, fsync_directory, load_archive


class TestDirectoryFsync:
    def test_atomic_savez_fsyncs_the_parent_directory(self, tmp_path, monkeypatch):
        # os.replace makes the rename atomic for readers, but only an
        # fsync of the parent directory makes it *durable* — track every
        # fsynced fd and assert one of them was the destination dir.
        synced_dirs = []
        real_fsync = os.fsync

        def tracking_fsync(fd):
            try:
                if os.path.isdir(f"/proc/self/fd/{fd}") or os.fstat(fd).st_mode & 0o040000:
                    synced_dirs.append(os.path.realpath(f"/proc/self/fd/{fd}"))
            except OSError:
                pass
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", tracking_fsync)
        atomic_savez(
            tmp_path / "a.npz",
            {"schema": 1},
            {"x": np.ones((2, 2), dtype=np.float32)},
        )
        assert os.path.realpath(tmp_path) in synced_dirs

    def test_fsync_directory_tolerates_missing_path(self, tmp_path):
        fsync_directory(tmp_path / "nope")  # must not raise

    def test_fsync_directory_tolerates_unfsyncable_fd(self, tmp_path, monkeypatch):
        # Some platforms cannot fsync a directory fd; the helper must
        # swallow that and leave the write path merely non-durable.
        def refusing_fsync(fd):
            raise OSError("EINVAL")

        monkeypatch.setattr(os, "fsync", refusing_fsync)
        fsync_directory(tmp_path)


class TestAtomicity:
    def test_failed_write_leaves_no_temp_and_old_file(self, tmp_path, monkeypatch):
        path = tmp_path / "a.npz"
        atomic_savez(path, {"v": 1}, {"x": np.zeros(3, dtype=np.float32)})
        before = path.read_bytes()

        def exploding_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(atomicio.os, "replace", exploding_replace)
        try:
            atomic_savez(path, {"v": 2}, {"x": np.ones(3, dtype=np.float32)})
        except OSError:
            pass
        assert path.read_bytes() == before
        assert [n for n in os.listdir(tmp_path) if n.endswith(".tmp-npz")] == []
        header, arrays = load_archive(path)
        assert header["v"] == 1
        np.testing.assert_array_equal(arrays["x"], np.zeros(3, dtype=np.float32))
