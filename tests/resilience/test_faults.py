"""FaultPlan: deterministic, auditable, validated."""

import pickle

import numpy as np
import pytest

from repro.resilience.faults import (
    SERVING_FAULT_KINDS,
    FaultPlan,
    InjectedWorkerKill,
    NumericalFault,
    ServingFaultPlan,
    expected_fault_events,
    expected_serving_faults,
    inject_shard_start,
    solver_fault_hook,
)

ALL_ON = FaultPlan(
    seed=3, kill_rate=0.3, delay_rate=0.3, nan_rate=0.3, overflow_rate=0.3,
    delay_seconds=0.0,
)


class TestFaultPlanDecisions:
    def test_fires_is_deterministic(self):
        for kind in ALL_ON.rate_of:
            for step in range(4):
                for shard in range(4):
                    first = ALL_ON.fires(kind, step, shard)
                    assert all(
                        ALL_ON.fires(kind, step, shard) == first for _ in range(3)
                    )

    def test_zero_rate_never_fires(self):
        quiet = FaultPlan(seed=3)
        assert not any(
            quiet.fires(kind, step, shard)
            for kind in quiet.rate_of
            for step in range(20)
            for shard in range(5)
        )

    def test_rate_one_always_fires(self):
        loud = FaultPlan(seed=0, nan_rate=1.0)
        assert all(loud.fires("fault.nan-flip", s, sh) for s in range(5) for sh in range(5))

    def test_retries_are_clean(self):
        loud = FaultPlan(seed=0, kill_rate=1.0, nan_rate=1.0)
        assert loud.fires("fault.worker-kill", 0, 0, attempt=0)
        assert not loud.fires("fault.worker-kill", 0, 0, attempt=1)
        assert not loud.fires("fault.nan-flip", 0, 0, attempt=2)

    def test_kinds_are_independent_streams(self):
        # With the same (step, shard), different kinds must not be
        # perfectly correlated — they draw from distinct SeedSequences.
        plan = FaultPlan(seed=9, nan_rate=0.5, overflow_rate=0.5)
        sites = [(s, sh) for s in range(30) for sh in range(4)]
        nan = [plan.fires("fault.nan-flip", *site) for site in sites]
        ovf = [plan.fires("fault.fp16-overflow", *site) for site in sites]
        assert nan != ovf

    def test_seed_changes_decisions(self):
        a = FaultPlan(seed=1, nan_rate=0.5)
        b = FaultPlan(seed=2, nan_rate=0.5)
        sites = [(s, sh) for s in range(30) for sh in range(4)]
        assert [a.fires("fault.nan-flip", *x) for x in sites] != [
            b.fires("fault.nan-flip", *x) for x in sites
        ]

    def test_lane_for_in_range_and_deterministic(self):
        for num in (1, 2, 7, 100):
            lanes = {ALL_ON.lane_for("fault.nan-flip", 0, 0, num) for _ in range(5)}
            assert len(lanes) == 1
            assert 0 <= lanes.pop() < num

    def test_lane_for_rejects_empty(self):
        with pytest.raises(ValueError, match="num_rows"):
            ALL_ON.lane_for("fault.nan-flip", 0, 0, 0)

    @pytest.mark.parametrize("field", ["kill_rate", "delay_rate", "nan_rate", "overflow_rate"])
    def test_rates_validated(self, field):
        with pytest.raises(ValueError, match=field):
            FaultPlan(**{field: 1.5})

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            FaultPlan(seed=-1)

    def test_as_dict_round_trips(self):
        assert FaultPlan(**ALL_ON.as_dict()) == ALL_ON


class TestExpectedEvents:
    def test_empty_shards_inject_nothing(self):
        loud = FaultPlan(seed=0, kill_rate=1.0, nan_rate=1.0)
        spans = [[(0, 0), (0, 4)], [(2, 2)]]
        events = expected_fault_events(loud, spans)
        assert all(site == ("fault.worker-kill", 0, 1) for site in events)

    def test_kill_preempts_other_faults(self):
        loud = FaultPlan(seed=0, kill_rate=1.0, delay_rate=1.0, nan_rate=1.0)
        events = expected_fault_events(loud, [[(0, 4)]])
        assert events == [("fault.worker-kill", 0, 0)]

    def test_enumeration_matches_fires(self):
        spans = [[(0, 5), (5, 9)] for _ in range(6)]
        events = expected_fault_events(ALL_ON, spans)
        for kind, step, shard in events:
            assert ALL_ON.fires(kind, step, shard)


class TestInjection:
    def test_serial_kill_raises(self):
        loud = FaultPlan(seed=0, kill_rate=1.0)
        with pytest.raises(InjectedWorkerKill):
            inject_shard_start(loud, 0, 0, 0, forked=False, events=[])

    def test_delay_records_event(self):
        plan = FaultPlan(seed=0, delay_rate=1.0, delay_seconds=0.0)
        events = []
        inject_shard_start(plan, 0, 0, 0, forked=False, events=events)
        assert [e["kind"] for e in events] == ["fault.delay"]

    def test_retry_injects_nothing(self):
        loud = FaultPlan(seed=0, kill_rate=1.0, delay_rate=1.0)
        events = []
        inject_shard_start(loud, 0, 0, 1, forked=False, events=events)
        assert events == []

    def test_solver_hook_corrupts_victim_lane_only(self):
        plan = FaultPlan(seed=0, nan_rate=1.0)
        events = []
        hook = solver_fault_hook(plan, 0, 0, 0, 10, events)
        store = np.ones((4, 3, 3), dtype=np.float32)
        hook(store)
        bad = ~np.isfinite(store).all(axis=(1, 2))
        assert bad.sum() == 1
        (event,) = events
        assert event["kind"] == "fault.nan-flip"
        assert event["lanes"] == [10 + int(np.flatnonzero(bad)[0])]

    def test_overflow_hook_flips_signs(self):
        plan = FaultPlan(seed=0, overflow_rate=1.0)
        events = []
        hook = solver_fault_hook(plan, 0, 0, 0, 0, events)
        store = np.ones((2, 4, 4), dtype=np.float32)
        hook(store)
        lane = events[0]["lanes"][0]
        assert np.all(np.isinf(store[lane]))
        assert (store[lane] < 0).any() and (store[lane] > 0).any()

    def test_quiet_plan_returns_no_hook(self):
        assert solver_fault_hook(FaultPlan(seed=0), 0, 0, 0, 0, []) is None


class TestNumericalFault:
    def test_carries_provenance(self):
        err = NumericalFault("bad", lanes=(3, 7), stage="solve")
        assert err.lanes == (3, 7)
        assert err.stage == "solve"

    def test_pickle_round_trip(self):
        err = NumericalFault("bad lanes", lanes=(1, 2), stage="hermitian")
        back = pickle.loads(pickle.dumps(err))
        assert isinstance(back, NumericalFault)
        assert back.args == err.args
        assert back.lanes == err.lanes
        assert back.stage == err.stage


class TestBackoffJitter:
    def test_deterministic_per_site(self):
        plan = FaultPlan(seed=5)
        draws = [plan.backoff_jitter(2, 1, a) for a in range(4)]
        again = [plan.backoff_jitter(2, 1, a) for a in range(4)]
        assert draws == again  # noqa: repro-float-eq - replay must be exact

    def test_distinct_sites_get_distinct_jitter(self):
        plan = FaultPlan(seed=5)
        draws = {
            plan.backoff_jitter(step, shard, attempt)
            for step in range(3)
            for shard in range(3)
            for attempt in range(3)
        }
        assert len(draws) == 27

    def test_range_and_seed_sensitivity(self):
        a = FaultPlan(seed=1).backoff_jitter(0, 0, 0)
        b = FaultPlan(seed=2).backoff_jitter(0, 0, 0)
        assert 0.0 <= a < 1.0 and 0.0 <= b < 1.0
        assert a != b  # noqa: repro-float-eq - different streams

    def test_independent_of_global_rng(self):
        plan = FaultPlan(seed=9)
        before = plan.backoff_jitter(1, 1, 1)
        np.random.seed(0)
        np.random.random(100)
        assert plan.backoff_jitter(1, 1, 1) == before  # noqa: repro-float-eq

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError, match="attempt"):
            FaultPlan(seed=0).backoff_jitter(0, 0, -1)


class TestServingFaultPlan:
    def make_plan(self, **kw):
        defaults = dict(
            seed=0, stall_rate=0.5, reload_rate=0.2,
            corrupt_rate=0.2, score_nan_rate=0.3,
        )
        defaults.update(kw)
        return ServingFaultPlan(**defaults)

    def test_fires_is_deterministic(self):
        plan = self.make_plan()
        for kind in plan.rate_of:
            for tick in range(8):
                first = plan.fires(kind, tick)
                assert all(plan.fires(kind, tick) == first for _ in range(3))

    def test_zero_rate_never_fires(self):
        plan = self.make_plan(stall_rate=0.0)
        assert not any(plan.fires("fault.backend-stall", t) for t in range(64))

    def test_rate_validation(self):
        with pytest.raises(ValueError, match="stall_rate"):
            self.make_plan(stall_rate=1.5)
        with pytest.raises(ValueError, match="seed"):
            self.make_plan(seed=-1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            self.make_plan().fires("fault.gremlin", 0)

    def test_unknown_kind_error_lists_every_valid_kind(self):
        # The message is the API's discovery surface: it must name all
        # seven kinds, fleet-scoped ones included, from both entry points.
        plan = self.make_plan()
        for trigger in (
            lambda: plan.fires("fault.gremlin", 0),
            lambda: plan.victim_lane("fault.gremlin", 0, 3),
        ):
            with pytest.raises(ValueError) as excinfo:
                trigger()
            message = str(excinfo.value)
            for kind in SERVING_FAULT_KINDS:
                assert kind in message
        assert "fault.fleet-worker-kill" in message

    def test_fleet_rates_default_to_zero_and_enumerate(self):
        # Back-compat: a plan built without the fleet rates never fires
        # a fleet kind, yet still enumerates all seven kinds in rate_of.
        plan = self.make_plan()
        assert set(plan.rate_of) == set(SERVING_FAULT_KINDS)
        for kind in (
            "fault.fleet-worker-kill",
            "fault.fleet-worker-reload",
            "fault.fleet-heartbeat-stall",
        ):
            assert plan.rate_of[kind] == 0.0
            assert not any(plan.fires(kind, t) for t in range(64))

    def test_victim_lane_in_range_and_stable(self):
        plan = self.make_plan(score_nan_rate=1.0)
        lanes = [plan.victim_lane("fault.score-nan", t, 5) for t in range(16)]
        assert all(0 <= lane < 5 for lane in lanes)
        assert lanes == [plan.victim_lane("fault.score-nan", t, 5) for t in range(16)]

    def test_expected_faults_enumeration_matches_fires(self):
        plan = self.make_plan()
        expected = expected_serving_faults(plan, 32)
        rebuilt = [
            (kind, tick)
            for tick in range(32)
            for kind in plan.rate_of
            if plan.fires(kind, tick)
        ]
        assert sorted(expected) == sorted(rebuilt)
        assert len(expected) > 0


class TestFaultStreamRegistry:
    """The docs/resilience.md registry table is authoritative.

    Stream numbers are part of the on-disk chaos contract (they seed the
    per-kind SeedSequence streams); this test pins the code's maps to the
    documented table so neither can drift silently.
    """

    def parse_docs_table(self):
        import os
        import re

        here = os.path.dirname(os.path.abspath(__file__))
        path = os.path.join(here, "..", "..", "docs", "resilience.md")
        rows = {}
        row_re = re.compile(r"^\|\s*(\d+)\s*\|\s*`([^`]+)`\s*\|")
        for line in open(path, encoding="utf-8"):
            match = row_re.match(line)
            if match:
                rows[match.group(2)] = int(match.group(1))
        return rows

    def test_docs_match_code_exactly(self):
        from repro.resilience.faults import _KIND_STREAMS, _SERVING_STREAMS

        documented = self.parse_docs_table()
        in_code = dict(_KIND_STREAMS)
        in_code.update(_SERVING_STREAMS)
        assert documented == in_code

    def test_every_serving_kind_has_a_stream(self):
        from repro.resilience.faults import (
            _SERVING_STREAMS,
            INGEST_FAULT_KINDS,
            SERVING_FAULT_KINDS,
        )

        assert set(_SERVING_STREAMS) == set(SERVING_FAULT_KINDS)
        # Ingestion kinds occupy the 108-110 block, contiguously.
        assert [_SERVING_STREAMS[k] for k in INGEST_FAULT_KINDS] == [108, 109, 110]

    def test_streams_are_unique_across_planes(self):
        from repro.resilience.faults import _KIND_STREAMS, _SERVING_STREAMS

        streams = list(_KIND_STREAMS.values()) + list(_SERVING_STREAMS.values())
        assert len(streams) == len(set(streams))
