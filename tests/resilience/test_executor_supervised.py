"""Supervised ShardExecutor: kills, retries, deadlines, degradation.

Pool tests inject *real* SIGKILLs into fork workers, so they are kept
small (80×30, 900 nnz) and use millisecond backoffs.  Accounting via
``RunHealth.account`` is only asserted where every injected fault is
guaranteed to be observed — a worker killed mid-delay loses its delay
event, so the deadline test checks kinds, not the full ledger.
"""

import multiprocessing

import numpy as np
import pytest

from repro.core.config import CGConfig, Precision
from repro.data import SyntheticConfig, generate_ratings
from repro.resilience.faults import FaultPlan, expected_fault_events
from repro.resilience.guards import GuardPolicy
from repro.resilience.health import RunHealth
from repro.runtime import RuntimePlan, ShardExecutor
from repro.runtime.executor import _backoff_sleep
from repro.runtime.plan import SupervisionPolicy

LAM = 0.08
CG = CGConfig(max_iters=5, tol=1e-5)

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")

FAST = SupervisionPolicy(backoff_seconds=0.001, shard_deadline=60.0)


@pytest.fixture(scope="module")
def problem():
    ratings = generate_ratings(SyntheticConfig(m=80, n=30, nnz=900, seed=5))
    rng = np.random.default_rng(1)
    theta = rng.normal(0, 0.1, (30, 12)).astype(np.float32)
    warm = rng.normal(0, 0.1, (80, 12)).astype(np.float32)
    return ratings, theta, warm


def run_steps(executor, problem, steps=2):
    ratings, theta, warm = problem
    result = None
    for _ in range(steps):
        result = executor.half_step(
            ratings, theta, warm, lam=LAM, cg_config=CG,
            precision=Precision.FP32,
        )
    return result


class TestSerialSupervised:
    def test_kills_are_retried_and_fully_accounted(self, problem):
        faults = FaultPlan(seed=11, kill_rate=0.4, delay_rate=0.3, delay_seconds=0.0)
        health = RunHealth()
        with ShardExecutor(
            RuntimePlan(shards=4), supervision=FAST, faults=faults, health=health,
        ) as executor:
            result = run_steps(executor, problem, steps=3)
            expected = expected_fault_events(faults, executor.spans_log)
        assert np.isfinite(result.factors).all()
        assert expected, "fault plan was expected to fire at these rates"
        missing, extra = health.account(expected)
        assert (missing, extra) == ([], [])
        kills = health.counts().get("fault.worker-kill", 0)
        assert health.counts().get("supervise.retry", 0) == kills

    def test_retry_budget_exhaustion_raises(self, problem):
        faults = FaultPlan(seed=0, kill_rate=1.0)
        policy = SupervisionPolicy(max_retries=0, backoff_seconds=0.0)
        with ShardExecutor(
            RuntimePlan(shards=2), supervision=policy, faults=faults,
        ) as executor:
            with pytest.raises(Exception, match="kill|injected"):
                run_steps(executor, problem, steps=1)

    def test_supervised_clean_run_matches_unsupervised(self, problem):
        plan = RuntimePlan(shards=3)
        with ShardExecutor(plan) as plain:
            ref = run_steps(plain, problem, steps=1)
        with ShardExecutor(plan, supervision=FAST, guard=GuardPolicy()) as sup:
            out = run_steps(sup, problem, steps=1)
        np.testing.assert_array_equal(out.factors, ref.factors)
        assert (out.cg_iterations, out.cg_matvec_count) == (
            ref.cg_iterations, ref.cg_matvec_count,
        )


@needs_fork
class TestPoolSupervised:
    def test_real_sigkills_respawn_and_account(self, problem):
        faults = FaultPlan(seed=11, kill_rate=0.4, delay_rate=0.3, delay_seconds=0.0)
        health = RunHealth()
        with ShardExecutor(
            RuntimePlan(shards=4, workers=2),
            supervision=FAST, faults=faults, health=health,
        ) as executor:
            result = run_steps(executor, problem, steps=3)
            expected = expected_fault_events(faults, executor.spans_log)
        assert np.isfinite(result.factors).all()
        missing, extra = health.account(expected)
        assert (missing, extra) == ([], [])
        assert health.counts().get("supervise.respawn", 0) == 0

    def test_pool_result_bit_equal_to_unsupervised(self, problem):
        plan = RuntimePlan(shards=4, workers=2)
        with ShardExecutor(plan) as plain:
            ref = run_steps(plain, problem, steps=1)
        with ShardExecutor(plan, supervision=FAST) as sup:
            out = run_steps(sup, problem, steps=1)
        np.testing.assert_array_equal(out.factors, ref.factors)

    def test_deadline_kills_and_retries(self, problem):
        # Every shard sleeps 0.2s on attempt 0, far past the 0.05s
        # deadline; retries are clean and must finish the step.  The
        # killed workers never report their delay events, so only the
        # kind counts are asserted — not the full account() ledger.
        faults = FaultPlan(seed=3, delay_rate=1.0, delay_seconds=0.2)
        policy = SupervisionPolicy(
            backoff_seconds=0.001, shard_deadline=0.05, pool_fault_limit=100,
        )
        health = RunHealth()
        with ShardExecutor(
            RuntimePlan(shards=2, workers=2),
            supervision=policy, faults=faults, health=health,
        ) as executor:
            result = run_steps(executor, problem, steps=1)
        assert np.isfinite(result.factors).all()
        counts = health.counts()
        assert counts.get("supervise.deadline", 0) == 2
        assert counts.get("supervise.retry", 0) == 2

    def test_degrades_to_serial_after_fault_limit(self, problem):
        faults = FaultPlan(seed=0, kill_rate=1.0)
        policy = SupervisionPolicy(
            max_retries=2, backoff_seconds=0.001, pool_fault_limit=1,
        )
        health = RunHealth()
        with ShardExecutor(
            RuntimePlan(shards=2, workers=2),
            supervision=policy, faults=faults, health=health,
        ) as executor:
            result = run_steps(executor, problem, steps=2)
            assert executor._degraded
        assert np.isfinite(result.factors).all()
        assert health.counts().get("supervise.degrade-serial", 0) == 1


class TestLifecycle:
    def test_close_is_idempotent(self, problem):
        executor = ShardExecutor(RuntimePlan(shards=2), supervision=FAST)
        run_steps(executor, problem, steps=1)
        executor.close()
        executor.close()
        assert executor._shm == {}

    def test_context_manager_releases_shm(self, problem):
        if not HAS_FORK:
            pytest.skip("fork start method unavailable")
        with ShardExecutor(RuntimePlan(shards=2, workers=2)) as executor:
            run_steps(executor, problem, steps=1)
            assert executor._shm
        assert executor._shm == {}

    def test_close_runs_even_when_body_raises(self, problem):
        with pytest.raises(RuntimeError, match="boom"):
            with ShardExecutor(RuntimePlan(shards=2)) as executor:
                run_steps(executor, problem, steps=1)
                raise RuntimeError("boom")
        assert executor._outputs == {}


class TestBackoffSchedule:
    def test_no_plan_means_no_jitter(self):
        policy = SupervisionPolicy(backoff_seconds=0.01, backoff_factor=2.0)
        for attempt in range(3):
            want = 0.01 * 2.0**attempt
            got = _backoff_sleep(policy, None, 0, 0, attempt)
            assert got == pytest.approx(want)

    def test_jitter_is_bounded_and_replayable(self):
        policy = SupervisionPolicy(
            backoff_seconds=0.01, backoff_factor=2.0, backoff_jitter=0.25
        )
        plan = FaultPlan(seed=11)
        for attempt in range(3):
            base = 0.01 * 2.0**attempt
            got = _backoff_sleep(policy, plan, 2, 1, attempt)
            assert base <= got < base * 1.25
            again = _backoff_sleep(policy, plan, 2, 1, attempt)
            assert got == again  # noqa: repro-float-eq - replayable schedule

    def test_jitter_derives_from_plan_seed(self):
        policy = SupervisionPolicy(backoff_seconds=0.01, backoff_jitter=0.25)
        a = _backoff_sleep(policy, FaultPlan(seed=1), 0, 0, 0)
        b = _backoff_sleep(policy, FaultPlan(seed=2), 0, 0, 0)
        assert a != b  # noqa: repro-float-eq - distinct streams

    def test_zero_jitter_policy_ignores_plan(self):
        policy = SupervisionPolicy(backoff_seconds=0.01, backoff_jitter=0.0)
        got = _backoff_sleep(policy, FaultPlan(seed=1), 0, 0, 1)
        assert got == pytest.approx(0.02)
