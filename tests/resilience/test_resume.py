"""Checkpoint/resume through the trainers: bit-equivalent continuation.

The contract under test is the ISSUE's acceptance criterion: kill a run
after any checkpoint, resume it, and the final factors, curve, epoch
breakdowns and (for implicit) loss history are **bit-identical** to the
uninterrupted reference.  Epochs are deterministic functions of the
factors entering them, so nothing short of lost state can break this.
"""

import os

import numpy as np
import pytest

from repro.core import (
    ALSConfig,
    ALSModel,
    CGConfig,
    ImplicitALSConfig,
    ImplicitALSModel,
    Precision,
    SolverKind,
)
from repro.data import SyntheticConfig, generate_ratings
from repro.resilience.faults import NumericalFault

EPOCHS = 4


@pytest.fixture(scope="module")
def split():
    train = generate_ratings(SyntheticConfig(m=60, n=40, nnz=800, true_rank=4, seed=2))
    test = generate_ratings(SyntheticConfig(m=60, n=40, nnz=200, true_rank=4, seed=3))
    return train, test


def als_model():
    return ALSModel(
        ALSConfig(f=8, lam=0.05, cg=CGConfig(max_iters=4, tol=1e-4), seed=9)
    )


def implicit_model():
    return ImplicitALSModel(
        ImplicitALSConfig(f=6, lam=0.05, alpha=10.0, cg=CGConfig(max_iters=4), seed=9)
    )


def assert_curves_equal(a, b):
    assert len(a.points) == len(b.points)
    for p, q in zip(a.points, b.points):
        assert p == q  # CurvePoint is frozen; equality is field-wise exact


class TestALSResume:
    def test_kill_and_resume_is_bit_equivalent(self, split, tmp_path):
        train, test = split
        reference = als_model()
        reference.fit(train, test, epochs=EPOCHS)

        # "Kill" after epoch 2: run only half the epochs, checkpointing.
        interrupted = als_model()
        interrupted.fit(train, test, epochs=2, checkpoint_dir=str(tmp_path))

        resumed = als_model()
        curve = resumed.fit(
            train, test, epochs=EPOCHS, checkpoint_dir=str(tmp_path), resume=True
        )
        np.testing.assert_array_equal(resumed.x_, reference.x_)
        np.testing.assert_array_equal(resumed.theta_, reference.theta_)
        assert_curves_equal(curve, reference.history_)
        assert resumed.epoch_breakdowns_ == reference.epoch_breakdowns_

    def test_resume_from_empty_dir_trains_from_scratch(self, split, tmp_path):
        train, test = split
        reference = als_model()
        reference.fit(train, test, epochs=2)
        fresh = als_model()
        fresh.fit(
            train, test, epochs=2,
            checkpoint_dir=str(tmp_path / "empty"), resume=True,
        )
        np.testing.assert_array_equal(fresh.x_, reference.x_)

    def test_resume_requires_checkpoint_dir(self, split):
        train, test = split
        with pytest.raises(ValueError, match="checkpoint_dir"):
            als_model().fit(train, test, epochs=1, resume=True)

    def test_checkpoint_every_thins_the_files(self, split, tmp_path):
        train, test = split
        model = als_model()
        model.fit(
            train, test, epochs=4,
            checkpoint_dir=str(tmp_path), checkpoint_every=2,
        )
        names = sorted(os.listdir(tmp_path))
        assert names == ["ckpt-000002.npz", "ckpt-000004.npz"]

    def test_checkpoint_every_validated(self, split):
        train, test = split
        with pytest.raises(ValueError, match="checkpoint_every"):
            als_model().fit(train, test, epochs=1, checkpoint_every=0)

    def test_checkpoint_keep_bounds_retention(self, split, tmp_path):
        train, test = split
        model = als_model()
        model.fit(
            train, test, epochs=4,
            checkpoint_dir=str(tmp_path), checkpoint_keep=2,
        )
        names = sorted(os.listdir(tmp_path))
        assert names == ["ckpt-000003.npz", "ckpt-000004.npz"]

    def test_checkpoint_keep_resumes_from_survivor(self, split, tmp_path):
        train, test = split
        reference = als_model()
        reference.fit(train, test, epochs=4)

        interrupted = als_model()
        interrupted.fit(
            train, test, epochs=2,
            checkpoint_dir=str(tmp_path), checkpoint_keep=1,
        )
        resumed = als_model()
        resumed.fit(
            train, test, epochs=4,
            checkpoint_dir=str(tmp_path), checkpoint_keep=1, resume=True,
        )
        np.testing.assert_array_equal(resumed.x_, reference.x_)

    def test_checkpoint_keep_validated(self, split):
        train, test = split
        with pytest.raises(ValueError, match="checkpoint_keep"):
            als_model().fit(train, test, epochs=1, checkpoint_keep=0)


class TestImplicitResume:
    def test_checkpoint_keep_bounds_retention(self, split, tmp_path):
        train, _ = split
        model = implicit_model()
        model.fit(train, epochs=3, checkpoint_dir=str(tmp_path), checkpoint_keep=1)
        assert sorted(os.listdir(tmp_path)) == ["ckpt-000003.npz"]

    def test_kill_and_resume_is_bit_equivalent(self, split, tmp_path):
        train, _ = split
        reference = implicit_model()
        reference.fit(train, epochs=EPOCHS)

        interrupted = implicit_model()
        interrupted.fit(train, epochs=2, checkpoint_dir=str(tmp_path))

        resumed = implicit_model()
        resumed.fit(
            train, epochs=EPOCHS, checkpoint_dir=str(tmp_path), resume=True
        )
        np.testing.assert_array_equal(resumed.x_, reference.x_)
        np.testing.assert_array_equal(resumed.theta_, reference.theta_)
        assert resumed.loss_history_ == reference.loss_history_

    def test_resume_requires_checkpoint_dir(self, split):
        train, _ = split
        with pytest.raises(ValueError, match="checkpoint_dir"):
            implicit_model().fit(train, epochs=1, resume=True)


class TestDegradationLadder:
    def test_escalation_order_fp32_then_lu_then_fault(self):
        model = ALSModel(ALSConfig(f=4, precision=Precision.FP16))
        detail = model._escalate(1e9)
        assert "FP16" in detail and model._active.precision is Precision.FP32
        detail = model._escalate(1e9)
        assert "LU" in detail and model._active.solver is SolverKind.LU
        with pytest.raises(NumericalFault, match="exhausted"):
            model._escalate(1e9)

    def test_ladder_does_not_mutate_user_config(self):
        cfg = ALSConfig(f=4, precision=Precision.FP16)
        model = ALSModel(cfg)
        model._escalate(1e9)
        assert cfg.precision is Precision.FP16
        assert model.config is cfg
