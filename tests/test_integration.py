"""Cross-module integration tests: full user workflows end to end."""

import numpy as np
import pytest

from repro import (
    ALSConfig,
    ALSModel,
    CuMFSGD,
    MultiGpuALS,
    Precision,
    SGDConfig,
    SolverKind,
    load_surrogate,
)
from repro.data import load_npz, save_npz, train_test_split
from repro.gpusim import PASCAL_P100


@pytest.fixture(scope="module")
def netflix():
    split, spec = load_surrogate("netflix", scale=0.1, seed=21)
    return split, spec


class TestTrainSaveReload:
    def test_roundtrip_predictions_stable(self, netflix, tmp_path):
        split, spec = netflix
        model = ALSModel(ALSConfig(f=16, lam=spec.lam))
        model.fit(split.train, epochs=3)

        # Persist the dataset, reload, rescore with the same factors.
        p = tmp_path / "train.npz"
        save_npz(p, split.train)
        again = load_npz(p)
        assert model.score(again) == pytest.approx(model.score(split.train), rel=1e-6)


class TestSolverCrossChecks:
    def test_all_solver_variants_agree_on_quality(self, netflix):
        """LU, CG-FP32 and CG-FP16 land within a hair of each other —
        the end-to-end statement of the paper's 'same accuracy' claim."""
        split, spec = netflix
        finals = {}
        for name, cfg in {
            "lu": ALSConfig(f=16, lam=spec.lam, solver=SolverKind.LU),
            "cg32": ALSConfig(f=16, lam=spec.lam, precision=Precision.FP32),
            "cg16": ALSConfig(f=16, lam=spec.lam, precision=Precision.FP16),
        }.items():
            finals[name] = (
                ALSModel(cfg).fit(split.train, split.test, epochs=5).final_rmse
            )
        spread = max(finals.values()) - min(finals.values())
        assert spread < 0.02, finals

    def test_simulated_speed_ordering_end_to_end(self, netflix):
        """While accuracy ties, simulated cost must order LU > CG32 > CG16."""
        split, spec = netflix
        times = {}
        for name, cfg in {
            "lu": ALSConfig(f=100, lam=spec.lam, solver=SolverKind.LU),
            "cg32": ALSConfig(f=100, lam=spec.lam, precision=Precision.FP32),
            "cg16": ALSConfig(f=100, lam=spec.lam, precision=Precision.FP16),
        }.items():
            m = ALSModel(cfg, sim_shape=spec.paper)
            times[name] = m.fit(split.train, epochs=2).total_seconds
        assert times["lu"] > times["cg32"] > times["cg16"]


class TestMultiGpuIntegration:
    def test_multi_gpu_equals_single_gpu_numerics_with_sgd_comparison(self, netflix):
        split, spec = netflix
        als4 = MultiGpuALS(
            ALSConfig(f=16, lam=spec.lam), device=PASCAL_P100, num_gpus=4
        )
        curve4 = als4.fit(split.train, split.test, epochs=4)
        als1 = ALSModel(ALSConfig(f=16, lam=spec.lam), device=PASCAL_P100)
        curve1 = als1.fit(split.train, split.test, epochs=4)
        assert curve4.final_rmse == pytest.approx(curve1.final_rmse, rel=1e-5)
        np.testing.assert_allclose(als4.x_, als1.x_, rtol=1e-4, atol=1e-5)

    def test_sgd_and_als_reach_same_regime(self, netflix):
        split, spec = netflix
        als = ALSModel(ALSConfig(f=16, lam=spec.lam)).fit(
            split.train, split.test, epochs=8
        )
        sgd = CuMFSGD(SGDConfig(f=16, lam=spec.lam, lr=0.1)).fit(
            split.train, split.test, epochs=30
        )
        assert abs(als.best_rmse - sgd.best_rmse) < 0.15


class TestFailureInjection:
    def test_non_finite_ratings_surface_loudly(self, netflix):
        """A NaN rating must not silently corrupt the fit."""
        split, spec = netflix
        bad = split.train.to_scipy().copy()
        bad.data[0] = np.nan
        from repro.data import RatingMatrix

        bad_ratings = RatingMatrix.from_scipy(bad)
        model = ALSModel(ALSConfig(f=8, lam=spec.lam))
        curve = model.fit(bad_ratings, split.test, epochs=2)
        # The NaN propagates into that user's system; the solver guards
        # keep everything else finite, and the train RMSE exposes it.
        finite_frac = np.isfinite(model.x_).mean()
        assert finite_frac > 0.99

    def test_pathological_single_user_matrix(self):
        """Degenerate shapes must train without crashing."""
        from repro.data import RatingMatrix

        r = RatingMatrix.from_coo([0, 0, 0], [0, 1, 2], [1.0, 2.0, 3.0], m=1, n=3)
        model = ALSModel(ALSConfig(f=4, lam=0.1))
        model.fit(r, epochs=2)
        assert np.isfinite(model.x_).all()

    def test_zero_variance_ratings(self):
        """All-identical ratings: model should fit the constant exactly."""
        from repro.data import RatingMatrix

        rng = np.random.default_rng(0)
        keys = rng.choice(50 * 30, size=400, replace=False)  # distinct cells
        rows, cols = keys // 30, keys % 30
        r = RatingMatrix.from_coo(rows, cols, np.full(400, 3.0), m=50, n=30)
        model = ALSModel(ALSConfig(f=4, lam=0.01))
        model.fit(r, epochs=5)
        assert model.score(r) < 0.25
