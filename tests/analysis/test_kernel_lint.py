"""Tests for the kernel linter: each KL rule must fire on its anti-pattern
and stay silent on the paper's tuned configuration."""

import pytest

from repro.analysis import Severity, lint_kernel_spec, lint_streaming_l1_request
from repro.core import ALSConfig, ReadScheme, hermitian_spec
from repro.data import WorkloadShape
from repro.gpusim import (
    MAXWELL_TITANX,
    KernelResources,
    KernelSpec,
    LevelFractions,
    MemoryPhase,
    coalesced,
)

NETFLIX = WorkloadShape(m=480_189, n=17_770, nnz=99_072_112, f=100)


def rules(diags):
    return {d.rule_id for d in diags}


def by_rule(diags, rule):
    return [d for d in diags if d.rule_id == rule]


def make_spec(**kw):
    defaults = dict(
        name="k",
        resources=KernelResources(registers_per_thread=32, threads_per_block=256),
        grid_blocks=100_000,
        flops=1e9,
        memory_phases=(
            MemoryPhase("load", coalesced(32 * 100_000), LevelFractions.all_dram()),
        ),
    )
    defaults.update(kw)
    return KernelSpec(**defaults)


class TestKL001Registers:
    def test_error_when_demand_exceeds_clamp(self):
        res = KernelResources(
            registers_per_thread=255, threads_per_block=64, requested_registers=300
        )
        diags = lint_kernel_spec(MAXWELL_TITANX, make_spec(resources=res))
        (d,) = by_rule(diags, "KL001")
        assert d.severity is Severity.ERROR
        assert "300" in d.message and "spill" in d.message

    def test_explicit_requested_registers_overrides(self):
        res = KernelResources(registers_per_thread=255, threads_per_block=64)
        diags = lint_kernel_spec(
            MAXWELL_TITANX, make_spec(resources=res), requested_registers=400
        )
        (d,) = by_rule(diags, "KL001")
        assert d.severity is Severity.ERROR

    def test_warning_at_clamp_without_known_demand(self):
        res = KernelResources(registers_per_thread=255, threads_per_block=64)
        diags = lint_kernel_spec(MAXWELL_TITANX, make_spec(resources=res))
        (d,) = by_rule(diags, "KL001")
        assert d.severity is Severity.WARNING

    def test_silent_below_clamp(self):
        res = KernelResources(registers_per_thread=168, threads_per_block=64)
        assert not by_rule(lint_kernel_spec(MAXWELL_TITANX, make_spec(resources=res)),
                           "KL001")

    def test_single_block_register_overflow_maps_to_kl001_error(self):
        # One block alone exceeds the register file: unlaunchable.
        res = KernelResources(registers_per_thread=255, threads_per_block=512)
        diags = lint_kernel_spec(MAXWELL_TITANX, make_spec(resources=res))
        launch = [d for d in by_rule(diags, "KL001")
                  if d.severity is Severity.ERROR]
        assert launch and "cannot launch" in launch[0].message


class TestKL002Occupancy:
    def test_fires_on_paper_hermitian_config(self):
        """Observation 2: f=100 hermitian runs at ~6 blocks/SM."""
        spec = hermitian_spec(MAXWELL_TITANX, NETFLIX, ALSConfig(f=100))
        (d,) = by_rule(lint_kernel_spec(MAXWELL_TITANX, spec), "KL002")
        assert d.severity is Severity.WARNING
        assert "6 blocks/SM" in d.message
        assert "registers" in d.message  # names the limiting resource

    def test_silent_on_high_occupancy(self):
        assert not by_rule(lint_kernel_spec(MAXWELL_TITANX, make_spec()), "KL002")


class TestKL003SharedMemory:
    def test_error_over_limit(self):
        res = KernelResources(
            registers_per_thread=32, threads_per_block=64,
            shared_mem_per_block=64 * 1024,
        )
        diags = lint_kernel_spec(MAXWELL_TITANX, make_spec(resources=res))
        found = by_rule(diags, "KL003")
        assert found and found[0].severity is Severity.ERROR

    def test_warning_near_limit(self):
        res = KernelResources(
            registers_per_thread=32, threads_per_block=64,
            shared_mem_per_block=46 * 1024,  # >90% of the 48 KB limit
        )
        diags = lint_kernel_spec(MAXWELL_TITANX, make_spec(resources=res))
        (d,) = by_rule(diags, "KL003")
        assert d.severity is Severity.WARNING


class TestKL004ReadScheme:
    def test_fires_on_coalesced_hermitian(self):
        """Figure 3's anti-pattern: coalesced staging loads at 6 blocks/SM."""
        cfg = ALSConfig(f=100, read_scheme=ReadScheme.COALESCED)
        spec = hermitian_spec(MAXWELL_TITANX, NETFLIX, cfg)
        found = by_rule(lint_kernel_spec(MAXWELL_TITANX, spec), "KL004")
        assert found
        assert found[0].subject == "get_hermitian:load"
        assert "latency-bound" in found[0].message

    def test_silent_on_noncoalesced_scheme(self):
        cfg = ALSConfig(f=100, read_scheme=ReadScheme.NONCOAL_L1)
        spec = hermitian_spec(MAXWELL_TITANX, NETFLIX, cfg)
        assert not by_rule(lint_kernel_spec(MAXWELL_TITANX, spec), "KL004")

    def test_write_phases_exempt(self):
        # The coalesced hermitian write phase never triggers KL004.
        cfg = ALSConfig(f=100, read_scheme=ReadScheme.COALESCED)
        spec = hermitian_spec(MAXWELL_TITANX, NETFLIX, cfg)
        subjects = {d.subject for d in
                    by_rule(lint_kernel_spec(MAXWELL_TITANX, spec), "KL004")}
        assert "get_hermitian:write" not in subjects


class TestKL005TailWave:
    def test_fires_on_straggler_grid(self):
        res = KernelResources(registers_per_thread=32, threads_per_block=256)
        wave = 8 * MAXWELL_TITANX.num_sms
        spec = make_spec(resources=res, grid_blocks=wave + 1)
        (d,) = by_rule(lint_kernel_spec(MAXWELL_TITANX, spec), "KL005")
        assert d.severity is Severity.WARNING

    def test_silent_on_large_grid(self):
        assert not by_rule(lint_kernel_spec(MAXWELL_TITANX, make_spec()), "KL005")


class TestKL006BlockGeometry:
    def test_error_on_non_warp_multiple(self):
        res = KernelResources(registers_per_thread=32, threads_per_block=100)
        diags = lint_kernel_spec(MAXWELL_TITANX, make_spec(resources=res))
        (d,) = by_rule(diags, "KL006")
        assert d.severity is Severity.ERROR
        assert "128" in d.hint  # rounds up to the next warp multiple

    def test_info_on_odd_warp_count(self):
        # 96 threads = 3 warps: warp-aligned but scheduler-misaligned.
        res = KernelResources(registers_per_thread=32, threads_per_block=96)
        (d,) = by_rule(lint_kernel_spec(MAXWELL_TITANX, make_spec(resources=res)),
                       "KL006")
        assert d.severity is Severity.INFO

    def test_silent_on_paper_64_thread_block(self):
        # 2 warps tile evenly over 4 schedulers: the paper's own choice.
        res = KernelResources(registers_per_thread=32, threads_per_block=64)
        assert not by_rule(lint_kernel_spec(MAXWELL_TITANX, make_spec(resources=res)),
                           "KL006")


class TestKL007StreamingL1:
    def test_fires_on_l1_fraction_over_streaming_phase(self):
        big = coalesced(100_000_000)  # 400 MB once-touched
        spec = make_spec(memory_phases=(
            MemoryPhase("load", big, LevelFractions.from_hit_rates(0.3, 0.2)),
        ))
        (d,) = by_rule(lint_kernel_spec(MAXWELL_TITANX, spec), "KL007")
        assert d.severity is Severity.WARNING

    def test_config_level_request(self):
        found = lint_streaming_l1_request(
            MAXWELL_TITANX, kernel="cg_iteration", working_set_bytes=400e6
        )
        assert rules(found) == {"KL007"}
        assert "touched once" in found[0].message

    def test_config_level_silent_when_it_fits(self):
        assert lint_streaming_l1_request(
            MAXWELL_TITANX, kernel="cg_iteration", working_set_bytes=100e3
        ) == []


class TestKL008PhaseHygiene:
    def test_duplicate_phase_error(self):
        spec = make_spec(memory_phases=(
            MemoryPhase("load", coalesced(1000), LevelFractions.all_dram()),
            MemoryPhase("load", coalesced(1000), LevelFractions.all_dram()),
        ))
        (d,) = by_rule(lint_kernel_spec(MAXWELL_TITANX, spec), "KL008")
        assert d.severity is Severity.ERROR
        assert "time_kernel" in d.message

    def test_empty_phase_warning(self):
        spec = make_spec(memory_phases=(
            MemoryPhase("load", coalesced(0), LevelFractions.all_dram()),
        ))
        (d,) = by_rule(lint_kernel_spec(MAXWELL_TITANX, spec), "KL008")
        assert d.severity is Severity.WARNING


class TestCleanSpec:
    def test_tuned_bandwidth_bound_spec_lints_clean(self):
        assert lint_kernel_spec(MAXWELL_TITANX, make_spec()) == []


@pytest.mark.parametrize("rule", ["KL00%d" % i for i in range(1, 9)])
def test_every_rule_documented(rule):
    from repro.analysis import RULE_REGISTRY

    assert RULE_REGISTRY[rule].paper_ref
