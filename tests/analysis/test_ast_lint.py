"""Tests for the repo-specific AST linter — and the self-lint gate:
the shipped source tree must produce zero findings."""

import pathlib
import textwrap

import pytest

from repro.analysis import lint_file, lint_source, lint_tree

SRC_REPRO = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"


def lint(code, filename="mod.py"):
    return lint_source(textwrap.dedent(code), filename)


def rules(diags):
    return {d.rule_id for d in diags}


class TestAL001FloatEquality:
    def test_flags_float_literal_equality(self):
        (d,) = lint("ok = x == 0.5\n")
        assert d.rule_id == "AL001"
        assert "0.5" in d.message

    def test_flags_not_equal(self):
        assert rules(lint("ok = 2.5 != y\n")) == {"AL001"}

    def test_sentinels_allowed(self):
        assert lint("a = x == 0.0\nb = y != 1.0\nc = z == -1.0\n") == []

    def test_ordering_comparisons_allowed(self):
        assert lint("ok = x < 0.5 or y >= 2.5\n") == []

    def test_integer_equality_allowed(self):
        assert lint("ok = n == 5\n") == []


class TestAL002BytesVsElements:
    def test_elements_into_bytes_param(self):
        (d,) = lint("f(total_bytes=num_elements)\n")
        assert d.rule_id == "AL002"
        assert "num_elements" in d.message

    def test_bytes_into_elements_param(self):
        (d,) = lint("f(element_count=working_set_bytes)\n")
        assert d.rule_id == "AL002"

    def test_matching_units_allowed(self):
        assert lint("f(total_bytes=working_set_bytes, count=num_elements)\n") == []

    def test_attribute_source_checked(self):
        assert rules(lint("f(total_bytes=shape.nnz)\n")) == {"AL002"}


class TestAL003FrozenValidation:
    def test_vacuous_post_init_flagged(self):
        code = """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Spec:
            x: int

            def __post_init__(self):
                pass
        """
        (d,) = lint(code)
        assert d.rule_id == "AL003"
        assert "vacuous" in d.message

    def test_config_without_post_init_flagged(self):
        code = """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class RunConfig:
            x: int
        """
        (d,) = lint(code)
        assert d.rule_id == "AL003"

    def test_validating_config_allowed(self):
        code = """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class RunConfig:
            x: int

            def __post_init__(self):
                if self.x <= 0:
                    raise ValueError("x must be positive")
        """
        assert lint(code) == []

    def test_non_config_without_post_init_allowed(self):
        code = """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Point:
            x: int
        """
        assert lint(code) == []

    def test_unfrozen_dataclass_ignored(self):
        code = """
        from dataclasses import dataclass

        @dataclass
        class MutableConfig:
            x: int
        """
        assert lint(code) == []


class TestAL004FunctionBodyImports:
    def test_flags_import_in_function(self):
        code = """
        def f():
            import math
            return math.pi
        """
        (d,) = lint(code)
        assert d.rule_id == "AL004"
        assert "math" in d.message

    def test_flags_from_import_in_method(self):
        code = """
        class C:
            def f(self):
                from os import path
                return path
        """
        assert rules(lint(code)) == {"AL004"}

    def test_module_scope_allowed(self):
        assert lint("import math\nfrom os import path\n") == []

    def test_cli_sanctioned_exception(self):
        code = """
        def handler():
            import numpy
            return numpy
        """
        assert lint(code, filename="repro/cli.py") == []
        assert rules(lint(code, filename="repro/other.py")) == {"AL004"}

    def test_runtime_layering_exceptions(self):
        # The autotuner/bench probe the serving-layer index lazily; a
        # module-scope import would invert the runtime<-serving layering.
        code = """
        def probe():
            from ..serving.index import build_index
            return build_index
        """
        assert lint(code, filename="repro/runtime/autotune.py") == []
        assert lint(code, filename="repro/runtime/bench.py") == []
        assert rules(lint(code, filename="repro/runtime/arena.py")) == {
            "AL004"
        }


class TestAL005LoopAllocations:
    HOT = "repro/core/solver.py"

    def test_flags_np_zeros_in_loop(self):
        code = """
        import numpy as np

        def f(chunks):
            for c in chunks:
                scratch = np.zeros((c, 8))
        """
        (d,) = lint(code, filename=self.HOT)
        assert d.rule_id == "AL005"
        assert "np.zeros" in d.message

    def test_flags_while_and_like_variants(self):
        code = """
        import numpy as np

        def f(a):
            while True:
                b = np.empty_like(a)
        """
        assert rules(lint(code, filename="repro/runtime/executor.py")) == {"AL005"}

    def test_hoisted_allocation_allowed(self):
        code = """
        import numpy as np

        def f(chunks):
            scratch = np.zeros((64, 8))
            for c in chunks:
                scratch[:c] = 0
        """
        assert lint(code, filename=self.HOT) == []

    def test_non_numpy_zeros_allowed(self):
        code = """
        def f(pool, chunks):
            for c in chunks:
                buf = pool.zeros((c, 8))
        """
        assert lint(code, filename=self.HOT) == []

    def test_cold_path_not_in_scope(self):
        code = """
        import numpy as np

        def f(chunks):
            for c in chunks:
                scratch = np.zeros((c, 8))
        """
        assert lint(code, filename="repro/metrics/ranking.py") == []
        assert lint(code, filename="repro/harness/report.py") == []


class TestTreeWalk:
    def test_lint_file_labels(self):
        path = SRC_REPRO / "gpusim" / "kernel.py"
        assert lint_file(path, label="repro/gpusim/kernel.py") == []

    def test_source_tree_lints_clean(self):
        """The acceptance gate behind ``repro analyze --self``."""
        assert lint_tree(SRC_REPRO) == []

    def test_missing_root_rejected(self):
        # A nonexistent root must not read as a clean lint.
        with pytest.raises(FileNotFoundError):
            lint_tree(SRC_REPRO / "no_such_dir")
