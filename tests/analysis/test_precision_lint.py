"""Tests for the precision-flow linter (paper Solutions 3 and 4)."""

import math

import numpy as np
import pytest

from repro.analysis import (
    AUStats,
    Severity,
    lint_precision,
    lint_solver_spec,
    sample_au_stats,
)
from repro.core import ALSConfig, CGConfig, Precision, SolverKind, cg_iteration_spec
from repro.core.precision import FP16_MAX
from repro.gpusim import MAXWELL_TITANX, PASCAL_P100


def stats(max_abs=10.0, mean_abs=1.0, condition=2.0):
    return AUStats(max_abs=max_abs, mean_abs=mean_abs, condition_estimate=condition)


def rules(diags):
    return {d.rule_id for d in diags}


def by_rule(diags, rule):
    return [d for d in diags if d.rule_id == rule]


class TestAUStats:
    def test_negative_magnitude_rejected(self):
        with pytest.raises(ValueError):
            AUStats(max_abs=-1.0, mean_abs=0.0, condition_estimate=2.0)

    def test_condition_below_one_rejected(self):
        with pytest.raises(ValueError):
            AUStats(max_abs=1.0, mean_abs=1.0, condition_estimate=0.5)

    def test_nan_condition_allowed(self):
        s = AUStats(max_abs=1.0, mean_abs=1.0, condition_estimate=float("nan"))
        assert math.isnan(s.condition_estimate)


class TestSampleAUStats:
    def test_identity_batch(self):
        A = np.stack([np.eye(4)] * 3)
        s = sample_au_stats(A)
        assert s.max_abs == pytest.approx(1.0)
        assert s.condition_estimate == pytest.approx(1.0)

    def test_single_matrix_promoted(self):
        s = sample_au_stats(np.diag([1.0, 4.0]))
        assert s.condition_estimate == pytest.approx(4.0)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            sample_au_stats(np.zeros((3, 4, 5)))

    def test_indefinite_matrices_give_nan_condition(self):
        s = sample_au_stats(np.diag([-1.0, 1.0]))
        assert math.isnan(s.condition_estimate)


class TestPL001Overflow:
    def cfg(self):
        return ALSConfig(f=10, precision=Precision.FP16)

    def test_error_when_over_fp16_max(self):
        diags = lint_precision(self.cfg(), stats=stats(max_abs=FP16_MAX * 2))
        (d,) = by_rule(diags, "PL001")
        assert d.severity is Severity.ERROR
        assert "clamps" in d.message

    def test_warning_within_headroom(self):
        diags = lint_precision(self.cfg(), stats=stats(max_abs=FP16_MAX / 2))
        (d,) = by_rule(diags, "PL001")
        assert d.severity is Severity.WARNING

    def test_silent_with_margin(self):
        assert not by_rule(
            lint_precision(self.cfg(), stats=stats(max_abs=10.0)), "PL001"
        )

    def test_silent_in_fp32(self):
        cfg = ALSConfig(f=10, precision=Precision.FP32)
        assert not by_rule(
            lint_precision(cfg, stats=stats(max_abs=FP16_MAX * 2)), "PL001"
        )


class TestPL002StorageVsCompute:
    def test_info_on_storage_only_device(self):
        diags = lint_precision(
            ALSConfig(f=10, precision=Precision.FP16), device=MAXWELL_TITANX
        )
        (d,) = by_rule(diags, "PL002")
        assert d.severity is Severity.INFO
        assert "storage-only" in d.message

    def test_silent_on_native_fp16_device(self):
        diags = lint_precision(
            ALSConfig(f=10, precision=Precision.FP16), device=PASCAL_P100
        )
        assert not by_rule(diags, "PL002")

    def test_solver_spec_warns_on_fp16_accumulate_without_native(self):
        # Force an FP16-compute spec onto Maxwell: storage/compute confusion.
        spec = cg_iteration_spec(PASCAL_P100, 10_000, 100, Precision.FP16)
        assert spec.compute_dtype_bytes == 2
        (d,) = lint_solver_spec(MAXWELL_TITANX, spec)
        assert d.rule_id == "PL002" and d.severity is Severity.WARNING

    def test_solver_spec_info_on_native(self):
        spec = cg_iteration_spec(PASCAL_P100, 10_000, 100, Precision.FP16)
        (d,) = lint_solver_spec(PASCAL_P100, spec)
        assert d.rule_id == "PL002" and d.severity is Severity.INFO

    def test_solver_spec_silent_on_fp32(self):
        spec = cg_iteration_spec(MAXWELL_TITANX, 10_000, 100, Precision.FP16)
        assert spec.compute_dtype_bytes == 4  # convert-on-load, FP32 accumulate
        assert lint_solver_spec(MAXWELL_TITANX, spec) == []


class TestPL003Truncation:
    def cfg(self, fs, tol=1e-4):
        return ALSConfig(f=10, solver=SolverKind.CG, cg=CGConfig(max_iters=fs, tol=tol))

    def test_degenerate_fs_warns(self):
        (d,) = by_rule(lint_precision(self.cfg(1)), "PL003")
        assert d.severity is Severity.WARNING
        assert "f_s=1" in d.message

    def test_ill_conditioned_stall_predicted(self):
        diags = lint_precision(self.cfg(6), stats=stats(condition=10_000.0))
        (d,) = by_rule(diags, "PL003")
        assert d.severity is Severity.WARNING
        suggested = dict(d.data)["suggested_fs"]
        assert suggested > 6

    def test_well_conditioned_silent(self):
        assert not by_rule(
            lint_precision(self.cfg(6), stats=stats(condition=2.0)), "PL003"
        )

    def test_lu_solver_skips_cg_rules(self):
        cfg = ALSConfig(f=10, solver=SolverKind.LU)
        assert not by_rule(lint_precision(cfg, stats=stats()), "PL003")


class TestPL004NoiseFloor:
    def test_sub_noise_tolerance_flagged(self):
        cfg = ALSConfig(
            f=10, precision=Precision.FP16,
            cg=CGConfig(max_iters=6, tol=1e-6),
        )
        diags = lint_precision(cfg, stats=stats(max_abs=10.0))
        (d,) = by_rule(diags, "PL004")
        assert d.severity is Severity.INFO
        assert dict(d.data)["noise_floor"] == pytest.approx(10.0 * 2**-11)

    def test_achievable_tolerance_silent(self):
        cfg = ALSConfig(
            f=10, precision=Precision.FP16,
            cg=CGConfig(max_iters=6, tol=1e-1),
        )
        assert not by_rule(lint_precision(cfg, stats=stats(max_abs=10.0)), "PL004")
