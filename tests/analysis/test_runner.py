"""Tests for the workload-level analyzer (the ``repro analyze`` engine)."""

import numpy as np

from repro.analysis import Severity, analyze_workload, max_severity, sample_workload_stats
from repro.core import ALSConfig, CGConfig, Precision, ReadScheme, SolverKind
from repro.data import WorkloadShape
from repro.data.sparse import RatingMatrix
from repro.gpusim import MAXWELL_TITANX

NETFLIX = WorkloadShape(m=480_189, n=17_770, nnz=99_072_112, f=100)


def rules(diags):
    return {d.rule_id for d in diags}


class TestAnalyzeWorkload:
    def test_paper_config_reproduces_observation_2(self):
        """The default tuned config is warning-level only: low occupancy
        (KL002) is structural, not a mistake."""
        diags = analyze_workload(MAXWELL_TITANX, NETFLIX, ALSConfig(f=100))
        assert "KL002" in rules(diags)
        assert max_severity(diags) is Severity.WARNING

    def test_bad_config_triggers_at_least_three_rules(self):
        """ISSUE acceptance: 96 threads + coalesced reads at f=100."""
        cfg = ALSConfig(f=100, read_scheme=ReadScheme.COALESCED)
        diags = analyze_workload(
            MAXWELL_TITANX, NETFLIX, cfg, threads_per_block=96
        )
        assert len(rules(diags)) >= 3
        assert {"KL002", "KL004", "KL006"} <= rules(diags)

    def test_use_l1_triggers_streaming_rule(self):
        diags = analyze_workload(
            MAXWELL_TITANX, NETFLIX, ALSConfig(f=100), use_l1=True
        )
        assert "KL007" in rules(diags)

    def test_lu_solver_skips_cg_kernels(self):
        diags = analyze_workload(
            MAXWELL_TITANX, NETFLIX, ALSConfig(f=100, solver=SolverKind.LU)
        )
        assert "KL007" not in rules(diags)
        assert all("cg_iteration" not in d.subject for d in diags)

    def test_degenerate_fs_surfaces_pl003(self):
        cfg = ALSConfig(f=100, cg=CGConfig(max_iters=1))
        diags = analyze_workload(MAXWELL_TITANX, NETFLIX, cfg)
        assert "PL003" in rules(diags)

    def test_findings_deduped_across_sides(self):
        diags = analyze_workload(MAXWELL_TITANX, NETFLIX, ALSConfig(f=100))
        keys = [(d.rule_id, d.severity, d.subject, d.message) for d in diags]
        assert len(keys) == len(set(keys))


class TestSampleWorkloadStats:
    def make_matrix(self, m=40, n=12, seed=0):
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, m, size=600)
        cols = rng.integers(0, n, size=600)
        vals = rng.uniform(1.0, 5.0, size=600).astype(np.float32)
        return RatingMatrix.from_coo(rows, cols, vals, m=m, n=n)

    def test_stats_are_finite_and_positive(self):
        train = self.make_matrix()
        stats = sample_workload_stats(train, ALSConfig(f=8))
        assert stats.max_abs > 0
        assert stats.mean_abs > 0
        assert stats.condition_estimate >= 1.0  # lam-regularized SPD systems

    def test_stats_feed_the_precision_linter(self):
        train = self.make_matrix()
        cfg = ALSConfig(f=8, precision=Precision.FP16, cg=CGConfig(tol=1e-12))
        stats = sample_workload_stats(train, cfg)
        diags = analyze_workload(MAXWELL_TITANX, NETFLIX, cfg, stats=stats)
        assert "PL004" in rules(diags)  # tol below the FP16 noise floor
