"""Tests for the interprocedural dataflow analyzer (DF/RC rules).

Each rule gets at least one seeded-bug test proving it fires and one
clean counterpart proving the conservative lattice stays silent; the
fixture modules on disk mirror the executor's real shapes; and the
final gate asserts the shipped hot path analyzes finding-free.
"""

import pathlib
import textwrap

import pytest

from repro.analysis import RULE_REGISTRY
from repro.analysis.dataflow import (
    DEFAULT_DATAFLOW_PATHS,
    DType,
    analyze_dataflow,
    analyze_sources,
    build_program,
)

FIXTURES = pathlib.Path(__file__).resolve().parents[1] / "fixtures" / "dataflow"


def run(code, filename="mod.py"):
    diags, _ = analyze_sources({filename: textwrap.dedent(code)})
    return diags


def rules(diags):
    return {d.rule_id for d in diags}


class TestRegistry:
    def test_all_dataflow_rules_registered(self):
        for rid in ("DF001", "DF002", "DF003", "DF004", "DF005",
                    "RC001", "RC002", "RC003", "RC004"):
            assert rid in RULE_REGISTRY, rid
            assert RULE_REGISTRY[rid].title


class TestDTypeLattice:
    def test_join_promotes_to_wider_float(self):
        prog = build_program({"m.py": textwrap.dedent("""
            import numpy as np
            def f():
                a = np.zeros(4, dtype=np.float16)
                b = np.zeros(4, dtype=np.float64)
                c = a.astype(np.float64) + b
                return c
        """)})
        (fn,) = [f for f in prog.functions if f.name == "f"]
        assert fn.env["c"].dtype is DType.FP64

    def test_unknown_absorbs(self):
        prog = build_program({"m.py": textwrap.dedent("""
            import numpy as np
            def f(x):
                y = x + np.zeros(4, dtype=np.float32)
                return y
        """)})
        (fn,) = [f for f in prog.functions if f.name == "f"]
        # one unknown operand: the known array's dtype is kept (weak-
        # scalar semantics), but rules never fire on the unknown side
        assert fn.env["y"].dtype is DType.FP32

    def test_arena_request_provenance(self):
        prog = build_program({"m.py": textwrap.dedent("""
            import numpy as np
            def f(ws):
                h = ws.request("k.h", (4, 4), np.float16)
                alias = h
                return alias
        """)})
        (fn,) = [f for f in prog.functions if f.name == "f"]
        assert fn.env["h"].dtype is DType.FP16
        assert fn.env["h"].arena_key == "k.h"
        assert fn.env["alias"].root == "h"


class TestInterprocedural:
    def test_return_summary_resolves_callee_dtype(self):
        diags = run("""
            import numpy as np
            def make_storage(n):
                return np.zeros(n, dtype=np.float16)
            def caller(n):
                h = make_storage(n)
                return np.dot(h, h)
        """)
        assert "DF002" in rules(diags)

    def test_param_seeding_needs_consensus(self):
        # two call sites disagree -> the param stays unknown -> no finding
        diags = run("""
            import numpy as np
            def reduce_it(arr):
                return arr.sum()
            def a(n):
                return reduce_it(np.zeros(n, dtype=np.float16))
            def b(n):
                return reduce_it(np.zeros(n, dtype=np.float32))
        """)
        assert "DF002" not in {
            d.rule_id for d in diags if "reduce_it" in d.message
        }

    def test_param_seeding_with_consensus_fires(self):
        diags = run("""
            import numpy as np
            def reduce_it(arr):
                return arr.sum()
            def a(n):
                return reduce_it(np.zeros(n, dtype=np.float16))
            def b(n):
                return reduce_it(np.zeros(n, dtype=np.float16))
        """)
        assert any(
            d.rule_id == "DF002" and "reduce_it" in d.message for d in diags
        )


class TestDF001SilentUpcast:
    def test_fires_on_implicit_fp16_fp32_mix(self):
        diags = run("""
            import numpy as np
            def f(ws, n):
                h = ws.request("k.h", (n,), np.float16)
                s = np.zeros(n, dtype=np.float32)
                return h + s
        """)
        assert "DF001" in rules(diags)

    def test_explicit_astype_is_sanctioned(self):
        assert run("""
            import numpy as np
            def f(ws, n):
                h = ws.request("k.h", (n,), np.float16)
                s = np.zeros(n, dtype=np.float32)
                return h.astype(np.float32) + s
        """) == []

    def test_uniform_fp16_math_is_clean(self):
        assert run("""
            import numpy as np
            def f(ws, n):
                h = ws.request("k.h", (n,), np.float16)
                g = ws.request("k.g", (n,), np.float16)
                return h + g
        """) == []


class TestDF002FP16Accumulation:
    @pytest.mark.parametrize("expr", [
        "np.einsum('i,i->', h, h)",
        "np.dot(h, h)",
        "h.sum()",
        "h @ h",
    ])
    def test_fires_on_fp16_reduction(self, expr):
        diags = run(f"""
            import numpy as np
            def f(ws, n):
                h = ws.request("k.h", (n,), np.float16)
                return {expr}
        """)
        assert "DF002" in rules(diags)

    def test_fp32_reduction_is_clean(self):
        assert run("""
            import numpy as np
            def f(ws, n):
                w = ws.request("k.w", (n,), np.float32)
                return np.dot(w, w)
        """) == []

    def test_elementwise_fp16_is_solution4_and_clean(self):
        assert run("""
            import numpy as np
            def f(ws, n):
                h = ws.request("k.h", (n,), np.float16)
                g = ws.request("k.g", (n,), np.float16)
                return np.minimum(h, g)
        """) == []


class TestDF003PersistenceRoundTrip:
    def test_fires_on_fp16_save(self):
        diags = run("""
            import numpy as np
            def f(path, n):
                x16 = np.zeros(n, dtype=np.float16)
                np.save(path, x16)
        """)
        assert "DF003" in rules(diags)

    def test_fires_on_fp16_downcast_of_loaded_array(self):
        diags = run("""
            import numpy as np
            def f(path):
                arrays = np.load(path)
                return arrays["x"].astype(np.float16)
        """)
        assert "DF003" in rules(diags)

    def test_fp32_round_trip_is_clean(self):
        assert run("""
            import numpy as np
            def f(path):
                arrays = np.load(path)
                return arrays["x"].astype(np.float32)
        """) == []


class TestDF004UnguardedQuantize:
    def test_fires_without_precision_guard(self):
        diags = run("""
            import numpy as np
            def quantize(values, precision):
                return values.astype(np.float16).astype(np.float32)
        """)
        assert "DF004" in rules(diags)

    def test_early_return_guard_is_clean(self):
        # the shape of repro.core.precision.quantize
        assert run("""
            import numpy as np
            def quantize(values, precision):
                if precision is Precision.FP32:
                    return values
                clipped = np.clip(values, -65504.0, 65504.0)
                return clipped.astype(np.float16).astype(np.float32)
        """) == []

    def test_enclosing_if_guard_is_clean(self):
        assert run("""
            import numpy as np
            def quantize(values, precision):
                if precision.itemsize == 2:
                    return values.astype(np.float16).astype(np.float32)
                return values
        """) == []

    def test_no_precision_param_no_rule(self):
        assert run("""
            import numpy as np
            def pack(values):
                return values.astype(np.float16)
        """) == []


class TestDF005SilentDowncast:
    def test_fires_on_copyto_downcast_without_casting(self):
        diags = run("""
            import numpy as np
            def f(ws, n):
                wide = np.zeros(n, dtype=np.float64)
                store = ws.request("k.s", (n,), np.float16)
                np.copyto(store, wide)
        """)
        assert "DF005" in rules(diags)

    def test_explicit_casting_kwarg_is_sanctioned(self):
        # the shape of cg_backends.ReferenceBackend.stage's copyto
        assert run("""
            import numpy as np
            def f(ws, n):
                wide = np.zeros(n, dtype=np.float32)
                store = ws.request("k.s", (n,), np.float16)
                np.copyto(store, wide, casting="same_kind")
        """) == []

    def test_upcast_copyto_is_clean(self):
        assert run("""
            import numpy as np
            def f(ws, n):
                halves = ws.request("k.h", (n,), np.float16)
                store = ws.request("k.s", (n,), np.float32)
                np.copyto(store, halves)
        """) == []

    def test_fires_on_downcasting_out_kwarg(self):
        diags = run("""
            import numpy as np
            def f(ws, n):
                wide = np.zeros(n, dtype=np.float64)
                narrow = ws.request("k.n", (n,), np.float32)
                np.multiply(wide, wide, out=narrow)
        """)
        assert "DF005" in rules(diags)

    def test_fires_on_downcasting_subscript_store(self):
        diags = run("""
            import numpy as np
            def f(ws, n):
                wide = np.zeros(n, dtype=np.float64)
                store = ws.request("k.s", (n,), np.float32)
                store[:] = wide
        """)
        assert "DF005" in rules(diags)


class TestRC001OutAliasing:
    def test_fires_on_aliased_matmul_out(self):
        diags = run("""
            import numpy as np
            def f(ws, n, k):
                A = ws.request("k.A", (n, k, k))
                np.matmul(A, A, out=A)
        """)
        assert "RC001" in rules(diags)

    def test_fires_on_shared_arena_key(self):
        diags = run("""
            import numpy as np
            def f(ws, n, k):
                A = ws.request("k.A", (n, k))
                B = A
                np.take(A, [0], axis=0, out=B)
        """)
        assert "RC001" in rules(diags)

    def test_distinct_buffers_clean(self):
        assert run("""
            import numpy as np
            def f(ws, n, k):
                A = ws.request("k.A", (n, k, k))
                G = ws.request("k.G", (n, k, k))
                np.matmul(A, A, out=G)
        """) == []

    def test_elementwise_in_place_is_sanctioned(self):
        assert run("""
            import numpy as np
            def f(ws, n):
                x = ws.request("k.x", (n,))
                np.clip(x, 0.0, 1.0, out=x)
                np.add(x, x, out=x)
        """) == []


class TestRC002ShardConfinement:
    def test_fires_on_out_of_slice_store(self):
        diags = run("""
            import numpy as np
            def shard(ratings, out, lo, hi):
                out[0:hi] = ratings
        """)
        assert "RC002" in rules(diags)

    def test_fires_on_whole_out_handed_to_writer(self):
        diags = run("""
            import numpy as np
            def shard(ratings, out, lo, hi):
                np.matmul(ratings, ratings, out=out)
        """)
        assert "RC002" in rules(diags)

    def test_confined_alias_is_sanctioned(self):
        # the shape of executor._compute_shard
        assert run("""
            import numpy as np
            def shard(ratings, out, lo, hi):
                rows_out = out[lo:hi]
                np.copyto(rows_out, ratings)
        """) == []

    def test_non_sharded_function_not_in_scope(self):
        assert run("""
            import numpy as np
            def writer(out):
                out[0:3] = 0.0
        """) == []


class TestRC003DoubleBorrow:
    def test_fires_on_two_live_names_for_one_key(self):
        diags = run("""
            def f(ws, n):
                a = ws.request("k.two", (n,))
                b = ws.request("k.two", (n,))
                return a + b
        """)
        assert "RC003" in rules(diags)

    def test_refresh_into_same_name_is_sanctioned(self):
        assert run("""
            def f(ws, n):
                a = ws.request("k.two", (n,))
                a = ws.request("k.two", (2 * n,))
                return a
        """) == []

    def test_dead_first_borrow_is_sanctioned(self):
        assert run("""
            def f(ws, n):
                a = ws.request("k.two", (n,))
                first = a.sum()
                b = ws.request("k.two", (n,))
                return first + b.sum()
        """) == []


class TestRC004WorkerCaptures:
    def test_fires_on_lambda_closure_over_local(self):
        diags = run("""
            def f(pool, items):
                state = {}
                return pool.map(lambda t: state.get(t), items)
        """)
        assert "RC004" in rules(diags)

    def test_fires_on_nested_def_passed_to_process(self):
        diags = run("""
            def f(ctx, conn):
                big = [1, 2, 3]
                def worker(task):
                    return big[task]
                proc = ctx.Process(target=worker, args=(0,))
        """)
        assert "RC004" in rules(diags)

    def test_module_level_worker_is_sanctioned(self):
        # the shape of executor._forked_shard / _FORK_CTX
        assert run("""
            def worker(task):
                return task
            def f(pool, items):
                return pool.map(worker, items)
        """) == []

    def test_closure_over_own_params_only_is_sanctioned(self):
        assert run("""
            def f(pool, items):
                return pool.map(lambda t: t + 1, items)
        """) == []


class TestFixtures:
    @pytest.mark.parametrize("name, rule", [
        ("bad_alias.py", "RC001"),
        ("bad_fp16_accumulate.py", "DF002"),
        ("bad_shard_write.py", "RC002"),
    ])
    def test_seeded_fixture_fires(self, name, rule):
        diags = analyze_dataflow(FIXTURES, paths=(name,))
        assert rule in rules(diags), name

    def test_clean_fixture_is_finding_free(self):
        assert analyze_dataflow(FIXTURES, paths=("clean.py",)) == []

    def test_missing_scan_path_raises(self):
        with pytest.raises(FileNotFoundError):
            analyze_dataflow(FIXTURES, paths=("no_such_module.py",))


class TestRepoGate:
    def test_default_paths_all_exist(self):
        src = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
        for rel in DEFAULT_DATAFLOW_PATHS:
            assert (src / rel).exists(), rel

    def test_shipped_hot_path_is_finding_free(self):
        # the acceptance gate: real findings get fixed, not baselined
        assert analyze_dataflow() == []
