"""Tests for the diagnostic framework: registry, ordering, renderers."""

import json

import pytest

from repro.analysis import (
    RULE_REGISTRY,
    Diagnostic,
    Severity,
    has_errors,
    max_severity,
    register_rule,
    render_json,
    render_text,
    rule_info,
)

TS001 = register_rule("TS001", "test rule one", "test paper ref")
TS002 = register_rule("TS002", "test rule two")


def diag(rule=TS001, sev=Severity.WARNING, subject="k", msg="m", **kw):
    return Diagnostic(rule_id=rule, severity=sev, subject=subject, message=msg, **kw)


class TestRegistry:
    def test_registered_rules_present(self):
        assert TS001 in RULE_REGISTRY
        assert rule_info(TS001).title == "test rule one"
        assert rule_info(TS001).paper_ref == "test paper ref"

    def test_reregistering_identical_is_idempotent(self):
        assert register_rule("TS001", "test rule one", "test paper ref") == "TS001"

    def test_reregistering_different_info_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_rule("TS001", "a different title")

    def test_empty_fields_rejected(self):
        with pytest.raises(ValueError):
            register_rule("", "title")
        with pytest.raises(ValueError):
            register_rule("TS999", "")

    def test_unknown_rule_lookup_raises(self):
        with pytest.raises(KeyError):
            rule_info("ZZ999")

    def test_lint_rules_registered_on_import(self):
        # Importing the package registers every documented rule family.
        for rid in ("KL001", "KL008", "PL001", "PL004", "AL001", "AL004"):
            assert rid in RULE_REGISTRY, rid
            assert RULE_REGISTRY[rid].title


class TestSeverity:
    def test_total_order(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR
        assert Severity.ERROR >= Severity.WARNING
        assert Severity.WARNING <= Severity.WARNING

    def test_string_value(self):
        assert Severity.ERROR.value == "error"


class TestDiagnostic:
    def test_unregistered_rule_rejected(self):
        with pytest.raises(ValueError, match="unregistered"):
            Diagnostic(
                rule_id="ZZ999", severity=Severity.INFO, subject="s", message="m"
            )

    def test_empty_message_rejected(self):
        with pytest.raises(ValueError, match="message"):
            diag(msg="")

    def test_title_resolves_from_registry(self):
        assert diag().title == "test rule one"

    def test_as_dict_round_trip(self):
        d = diag(hint="fix it", data=(("x", 1.5),))
        payload = d.as_dict()
        assert payload["rule"] == TS001
        assert payload["severity"] == "warning"
        assert payload["hint"] == "fix it"
        assert payload["data"] == {"x": 1.5}
        assert payload["paper_ref"] == "test paper ref"

    def test_as_dict_omits_empty_optionals(self):
        payload = diag(rule=TS002).as_dict()
        assert "hint" not in payload
        assert "data" not in payload
        assert "paper_ref" not in payload


class TestAggregates:
    def test_max_severity_empty(self):
        assert max_severity([]) is None

    def test_max_severity(self):
        diags = [diag(sev=Severity.INFO), diag(sev=Severity.ERROR),
                 diag(sev=Severity.WARNING)]
        assert max_severity(diags) is Severity.ERROR

    def test_has_errors(self):
        assert not has_errors([diag(sev=Severity.WARNING)])
        assert has_errors([diag(sev=Severity.ERROR)])


class TestRenderers:
    def test_text_empty(self):
        assert render_text([]) == "no findings"

    def test_text_severity_breaks_ties_at_same_location(self):
        out = render_text([diag(sev=Severity.INFO, msg="low"),
                           diag(sev=Severity.ERROR, msg="high")])
        assert out.index("ERROR") < out.index("INFO")
        assert "2 finding(s)" in out
        assert "1 error, 1 info" in out

    def test_sorted_by_path_then_line_then_rule(self):
        diags = [
            diag(subject="b.py:2", msg="later file"),
            diag(subject="a.py:10", msg="line ten"),
            diag(subject="a.py:9", msg="line nine", sev=Severity.INFO),
            diag(rule=TS002, subject="a.py:9", msg="rule two"),
        ]
        out = render_text(diags)
        order = [out.index(m) for m in
                 ("line nine", "rule two", "line ten", "later file")]
        assert order == sorted(order)

    def test_line_numbers_sort_numerically_not_lexically(self):
        out = render_text([diag(subject="a.py:100", msg="hundred"),
                           diag(subject="a.py:20", msg="twenty")])
        assert out.index("twenty") < out.index("hundred")

    def test_identical_findings_dedupe(self):
        d = diag(subject="a.py:5")
        out = render_text([d, d, d])
        assert "1 finding(s)" in out

    def test_distinct_findings_not_deduped(self):
        out = render_text([diag(subject="a.py:5", msg="one"),
                           diag(subject="a.py:5", msg="two")])
        assert "2 finding(s)" in out

    def test_json_dedupes_and_counts_unique(self):
        d = diag(sev=Severity.ERROR)
        payload = json.loads(render_json([d, d]))
        assert payload["count"] == 1
        assert len(payload["diagnostics"]) == 1

    def test_json_byte_stable_across_input_order(self):
        a = diag(subject="a.py:1", msg="first")
        b = diag(subject="b.py:1", msg="second")
        assert render_json([a, b]) == render_json([b, a])

    def test_text_includes_hint(self):
        assert "hint: do the thing" in render_text([diag(hint="do the thing")])

    def test_json_schema_and_counts(self):
        payload = json.loads(render_json([diag(sev=Severity.ERROR)]))
        assert payload["schema"] == "repro.analysis/v1"
        assert payload["count"] == 1
        assert payload["max_severity"] == "error"
        assert payload["diagnostics"][0]["rule"] == TS001

    def test_json_empty(self):
        payload = json.loads(render_json([]))
        assert payload["count"] == 0
        assert payload["max_severity"] is None
        assert payload["diagnostics"] == []
