"""Tests for suppression baselines: fingerprints, round-trip, gating."""

import json

import pytest

from repro.analysis import (
    Diagnostic,
    Severity,
    apply_baseline,
    load_baseline,
    register_rule,
    write_baseline,
)
from repro.analysis.baseline import BASELINE_SCHEMA, fingerprint

TB001 = register_rule("TB001", "baseline test rule")


def diag(subject="repro/core/cg.py:42", msg="m"):
    return Diagnostic(
        rule_id=TB001, severity=Severity.WARNING, subject=subject, message=msg
    )


class TestFingerprint:
    def test_line_number_is_stripped(self):
        assert fingerprint(diag("a/b.py:42")) == fingerprint(diag("a/b.py:99"))

    def test_path_and_message_distinguish(self):
        assert fingerprint(diag("a/b.py:1")) != fingerprint(diag("a/c.py:1"))
        assert fingerprint(diag(msg="x")) != fingerprint(diag(msg="y"))

    def test_non_positional_subject_kept_whole(self):
        fp = fingerprint(diag(subject="kernel:get_hermitian"))
        assert fp[1] == "kernel:get_hermitian"


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = tmp_path / "base.json"
        n = write_baseline(path, [diag(), diag("a/b.py:7", "other")])
        assert n == 2
        loaded = load_baseline(path)
        assert fingerprint(diag()) in loaded
        assert len(loaded) == 2

    def test_duplicates_collapse(self, tmp_path):
        path = tmp_path / "base.json"
        assert write_baseline(path, [diag("a/b.py:1"), diag("a/b.py:2")]) == 1

    def test_schema_enforced(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "nope", "findings": []}))
        with pytest.raises(ValueError, match="schema"):
            load_baseline(path)

    def test_file_is_sorted_and_stable(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_baseline(a, [diag("z.py:1"), diag("a.py:1")])
        write_baseline(b, [diag("a.py:9"), diag("z.py:9")])
        assert a.read_text() == b.read_text()


class TestApply:
    def test_baselined_findings_suppressed(self, tmp_path):
        path = tmp_path / "base.json"
        write_baseline(path, [diag()])
        fresh, suppressed = apply_baseline(
            [diag("a/b.py:1", "new finding"), diag()], load_baseline(path)
        )
        assert suppressed == 1
        assert [d.message for d in fresh] == ["new finding"]

    def test_empty_baseline_suppresses_nothing(self):
        fresh, suppressed = apply_baseline([diag()], set())
        assert suppressed == 0
        assert len(fresh) == 1

    def test_repo_baseline_is_empty(self):
        # the shipped tree analyzes clean; its committed baseline must
        # stay empty so new findings are fixed, not suppressed
        import pathlib

        repo = pathlib.Path(__file__).resolve().parents[2]
        payload = json.loads((repo / ".analysis-baseline.json").read_text())
        assert payload["schema"] == BASELINE_SCHEMA
        assert payload["findings"] == []
