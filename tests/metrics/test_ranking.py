"""Tests for implicit-feedback ranking metrics."""

import math

import numpy as np
import pytest

from repro.data import RatingMatrix
from repro.metrics.ranking import (
    mean_percentile_rank,
    ndcg_at_k,
    precision_recall_at_k,
)


@pytest.fixture
def oracle():
    """Factors that rank items exactly by index for every user: item 0
    scores highest, item n-1 lowest."""
    n = 10
    x = np.ones((4, 1))
    theta = np.arange(n, 0, -1, dtype=float).reshape(n, 1)
    return x, theta, n


class TestPrecisionRecall:
    def test_perfect_ranking(self, oracle):
        x, theta, n = oracle
        # Held-out truth: items 0..2 for every user (the top-scored ones).
        held = RatingMatrix.from_coo(
            np.repeat(np.arange(4), 3), np.tile([0, 1, 2], 4), np.ones(12), m=4, n=n
        )
        p, r = precision_recall_at_k(x, theta, held, k=3)
        assert p == 1.0
        assert r == 1.0

    def test_worst_ranking(self, oracle):
        x, theta, n = oracle
        held = RatingMatrix.from_coo([0], [n - 1], [1.0], m=4, n=n)
        p, r = precision_recall_at_k(x, theta, held, k=3)
        assert p == 0.0
        assert r == 0.0

    def test_train_exclusion(self, oracle):
        x, theta, n = oracle
        # Truth = item 3; items 0-2 are in train and must be excluded,
        # promoting item 3 into the top-3.
        held = RatingMatrix.from_coo([0], [3], [1.0], m=4, n=n)
        train = RatingMatrix.from_coo([0, 0, 0], [0, 1, 2], [1.0] * 3, m=4, n=n)
        p_with, _ = precision_recall_at_k(x, theta, held, k=1, train=train)
        p_without, _ = precision_recall_at_k(x, theta, held, k=1)
        assert p_with == 1.0
        assert p_without == 0.0

    def test_empty_held_out(self, oracle):
        x, theta, n = oracle
        empty = RatingMatrix.from_coo([], [], [], m=4, n=n)
        p, r = precision_recall_at_k(x, theta, empty, k=3)
        assert math.isnan(p) and math.isnan(r)

    def test_k_validation(self, oracle):
        x, theta, n = oracle
        held = RatingMatrix.from_coo([0], [0], [1.0], m=4, n=n)
        with pytest.raises(ValueError):
            precision_recall_at_k(x, theta, held, k=0)


class TestNDCG:
    def test_perfect_is_one(self, oracle):
        x, theta, n = oracle
        held = RatingMatrix.from_coo(
            np.repeat(np.arange(4), 2), np.tile([0, 1], 4), np.ones(8), m=4, n=n
        )
        assert ndcg_at_k(x, theta, held, k=2) == pytest.approx(1.0)

    def test_partial_credit_ordering(self, oracle):
        x, theta, n = oracle
        # Truth at rank 2 scores less than truth at rank 1.
        held_hi = RatingMatrix.from_coo([0], [0], [1.0], m=4, n=n)
        held_lo = RatingMatrix.from_coo([0], [1], [1.0], m=4, n=n)
        assert ndcg_at_k(x, theta, held_hi, k=3) > ndcg_at_k(x, theta, held_lo, k=3)

    def test_validation(self, oracle):
        x, theta, n = oracle
        held = RatingMatrix.from_coo([0], [0], [1.0], m=4, n=n)
        with pytest.raises(ValueError):
            ndcg_at_k(x, theta, held, k=-1)


class TestMPR:
    def test_perfect_is_zero(self, oracle):
        x, theta, n = oracle
        held = RatingMatrix.from_coo(np.arange(4), np.zeros(4, int), np.ones(4), m=4, n=n)
        assert mean_percentile_rank(x, theta, held) == pytest.approx(0.0)

    def test_worst_is_one(self, oracle):
        x, theta, n = oracle
        held = RatingMatrix.from_coo([0], [n - 1], [1.0], m=4, n=n)
        assert mean_percentile_rank(x, theta, held) == pytest.approx(1.0)

    def test_random_model_near_half(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(50, 4))
        theta = rng.normal(size=(200, 4))
        held = RatingMatrix.from_coo(
            rng.integers(0, 50, 400), rng.integers(0, 200, 400), np.ones(400),
            m=50, n=200,
        )
        mpr = mean_percentile_rank(x, theta, held)
        assert 0.4 < mpr < 0.6

    def test_weighting_by_confidence(self, oracle):
        x, theta, n = oracle
        # Heavy weight on a poorly ranked item dominates the average.
        held = RatingMatrix.from_coo(
            [0, 0], [0, n - 1], [1.0, 99.0], m=4, n=n
        )
        assert mean_percentile_rank(x, theta, held) > 0.9

    def test_single_item_catalog_rejected(self):
        x = np.ones((2, 1))
        theta = np.ones((1, 1))
        held = RatingMatrix.from_coo([0], [0], [1.0], m=2, n=1)
        with pytest.raises(ValueError):
            mean_percentile_rank(x, theta, held)

    def test_trained_model_beats_random(self):
        """An implicit model should push MPR well below 0.5."""
        from repro.core import ImplicitALSConfig, ImplicitALSModel
        from repro.data import SyntheticConfig, generate_ratings, train_test_split

        data = generate_ratings(
            SyntheticConfig(m=300, n=150, nnz=6000, rating_min=1, rating_max=10, seed=4)
        )
        split = train_test_split(data, 0.2, seed=5)
        model = ImplicitALSModel(
            ImplicitALSConfig(f=16, lam=0.1, alpha=10.0)
        ).fit(split.train, epochs=6)
        mpr = mean_percentile_rank(model.x_, model.theta_, split.test)
        assert mpr < 0.35
