"""Tests for RMSE and convergence-curve utilities."""

import math

import numpy as np
import pytest

from repro.data import RatingMatrix
from repro.metrics import TrainingCurve, predict_entries, rmse


@pytest.fixture
def exact_model():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(6, 3))
    theta = rng.normal(size=(4, 3))
    full = x @ theta.T
    rows, cols = np.nonzero(np.ones((6, 4)))
    ratings = RatingMatrix.from_coo(rows, cols, full[rows, cols], m=6, n=4)
    return x, theta, ratings


class TestRmse:
    def test_perfect_model_zero_rmse(self, exact_model):
        x, theta, ratings = exact_model
        assert rmse(x, theta, ratings) == pytest.approx(0.0, abs=1e-6)

    def test_known_error(self, exact_model):
        x, theta, ratings = exact_model
        shifted = RatingMatrix.from_coo(
            np.repeat(np.arange(6), 4),
            np.tile(np.arange(4), 6),
            (x @ theta.T).ravel() + 2.0,
            m=6,
            n=4,
        )
        assert rmse(x, theta, shifted) == pytest.approx(2.0, rel=1e-5)

    def test_empty_is_nan(self):
        empty = RatingMatrix.from_coo([], [], [], m=3, n=3)
        assert math.isnan(rmse(np.ones((3, 2)), np.ones((3, 2)), empty))

    def test_predict_entries(self, exact_model):
        x, theta, _ = exact_model
        p = predict_entries(x, theta, np.array([1, 2]), np.array([0, 3]))
        assert p[0] == pytest.approx(x[1] @ theta[0])
        assert p[1] == pytest.approx(x[2] @ theta[3])

    def test_predict_validation(self, exact_model):
        x, theta, _ = exact_model
        with pytest.raises(ValueError):
            predict_entries(x, theta, np.array([1, 2]), np.array([0]))
        with pytest.raises(IndexError):
            predict_entries(x, theta, np.array([99]), np.array([0]))


class TestTrainingCurve:
    def make(self):
        c = TrainingCurve("demo")
        c.record(1, 1.0, 1.5)
        c.record(2, 2.0, 1.0)
        c.record(3, 3.0, 0.8)
        return c

    def test_properties(self):
        c = self.make()
        assert c.final_rmse == 0.8
        assert c.best_rmse == 0.8
        assert c.total_seconds == 3.0
        assert c.rmse_array().tolist() == [1.5, 1.0, 0.8]

    def test_time_to_rmse_interpolates(self):
        c = self.make()
        # Crossing 0.9 happens between t=2 (1.0) and t=3 (0.8).
        assert c.time_to_rmse(0.9) == pytest.approx(2.5)

    def test_time_to_rmse_exact_point(self):
        c = self.make()
        assert c.time_to_rmse(1.5) == 1.0

    def test_time_to_rmse_unreachable(self):
        c = self.make()
        assert c.time_to_rmse(0.1) is None

    def test_epochs_to_rmse(self):
        c = self.make()
        assert c.epochs_to_rmse(1.0) == 2
        assert c.epochs_to_rmse(0.01) is None

    def test_time_must_not_go_backward(self):
        c = self.make()
        with pytest.raises(ValueError):
            c.record(4, 2.5, 0.7)

    def test_empty_curve_raises(self):
        c = TrainingCurve("empty")
        with pytest.raises(ValueError):
            _ = c.final_rmse
        with pytest.raises(ValueError):
            _ = c.best_rmse
        assert c.total_seconds == 0.0
