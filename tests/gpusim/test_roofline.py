"""Tests for the compute roofline model."""

import pytest

from repro.gpusim import (
    MAXWELL_TITANX,
    PASCAL_P100,
    compute_phase_time,
    occupancy_efficiency,
)


class TestOccupancyEfficiency:
    def test_saturates_above_knee(self):
        assert occupancy_efficiency(0.25) == 1.0
        assert occupancy_efficiency(1.0) == 1.0

    def test_linear_below_knee(self):
        assert occupancy_efficiency(0.125) == pytest.approx(0.5)
        assert occupancy_efficiency(0.05, knee=0.5) == pytest.approx(0.1)

    def test_range_check(self):
        with pytest.raises(ValueError):
            occupancy_efficiency(-0.1)
        with pytest.raises(ValueError):
            occupancy_efficiency(1.1)


class TestComputePhase:
    def test_zero_flops_free(self):
        t = compute_phase_time(MAXWELL_TITANX, 0.0)
        assert t.seconds == 0.0

    def test_linear_in_flops(self):
        t1 = compute_phase_time(MAXWELL_TITANX, 1e12)
        t2 = compute_phase_time(MAXWELL_TITANX, 2e12)
        assert t2.seconds == pytest.approx(2 * t1.seconds)

    def test_efficiency_bounds(self):
        t = compute_phase_time(MAXWELL_TITANX, 1e12, instruction_efficiency=0.8)
        assert t.achieved_flops == pytest.approx(0.8 * MAXWELL_TITANX.peak_flops_fp32)
        assert t.efficiency == pytest.approx(0.8)

    def test_low_occupancy_slows_compute(self):
        full = compute_phase_time(MAXWELL_TITANX, 1e12, occupancy=1.0)
        starved = compute_phase_time(MAXWELL_TITANX, 1e12, occupancy=0.05)
        assert starved.seconds > full.seconds

    def test_fp16_double_rate_only_on_native(self):
        p16 = compute_phase_time(PASCAL_P100, 1e12, dtype_bytes=2)
        p32 = compute_phase_time(PASCAL_P100, 1e12, dtype_bytes=4)
        assert p16.seconds == pytest.approx(p32.seconds / 2)
        m16 = compute_phase_time(MAXWELL_TITANX, 1e12, dtype_bytes=2)
        m32 = compute_phase_time(MAXWELL_TITANX, 1e12, dtype_bytes=4)
        assert m16.seconds == pytest.approx(m32.seconds)

    def test_validation(self):
        with pytest.raises(ValueError):
            compute_phase_time(MAXWELL_TITANX, -1.0)
        with pytest.raises(ValueError):
            compute_phase_time(MAXWELL_TITANX, 1.0, instruction_efficiency=0.0)
        with pytest.raises(ValueError):
            compute_phase_time(MAXWELL_TITANX, 1.0, instruction_efficiency=1.5)
