"""Tests for device presets and DeviceSpec invariants."""

import pytest

from repro.gpusim import (
    DEVICE_PRESETS,
    KEPLER_K40,
    MAXWELL_TITANX,
    PASCAL_P100,
    DeviceSpec,
    get_device,
)


class TestPresets:
    def test_paper_table3_kepler(self):
        # "Two Kepler K40, each: 4 TFLOPS, 12 GB RAM, 288 GB/s"
        assert KEPLER_K40.peak_flops_fp32 == pytest.approx(4.29e12, rel=0.1)
        assert KEPLER_K40.dram_bandwidth == 288e9
        assert KEPLER_K40.dram_capacity == 12 * 1024**3

    def test_paper_table3_maxwell(self):
        # "Four Titan X, each: 7 TFLOPS, 12 GB RAM, 340 GB/s"
        assert MAXWELL_TITANX.peak_flops_fp32 == pytest.approx(7e12, rel=0.05)
        assert MAXWELL_TITANX.dram_bandwidth == 340e9

    def test_paper_table3_pascal(self):
        # "Four Tesla P100, each: 11 TFLOPS, 16 GB, 740 GB/s"
        assert PASCAL_P100.peak_flops_fp32 == pytest.approx(11e12, rel=0.05)
        assert PASCAL_P100.dram_bandwidth == pytest.approx(740e9, rel=0.02)
        assert PASCAL_P100.dram_capacity == 16 * 1024**3

    def test_maxwell_cache_sizes_match_paper_section3(self):
        # "Nvidia Maxwell's L1 cache of 48 KB and L2 cache ... 3 MB
        # shared by 24 SMs" and "65536 float registers in each SM".
        assert MAXWELL_TITANX.l1_size == 48 * 1024
        assert MAXWELL_TITANX.l2_size == 3 * 1024 * 1024
        assert MAXWELL_TITANX.num_sms == 24
        assert MAXWELL_TITANX.registers_per_sm == 65536

    def test_fp16_only_native_on_pascal(self):
        assert PASCAL_P100.native_fp16_arithmetic
        assert not MAXWELL_TITANX.native_fp16_arithmetic
        assert not KEPLER_K40.native_fp16_arithmetic
        assert PASCAL_P100.peak_flops_fp16 == 2 * PASCAL_P100.peak_flops_fp32

    def test_all_presets_validate(self):
        for dev in set(DEVICE_PRESETS.values()):
            dev.validate()

    def test_derived_quantities(self):
        assert MAXWELL_TITANX.max_warps_per_sm == 64
        assert MAXWELL_TITANX.l2_size_per_sm == pytest.approx(128 * 1024)
        assert MAXWELL_TITANX.flops_per_sm == pytest.approx(
            MAXWELL_TITANX.peak_flops_fp32 / 24
        )


class TestLookup:
    @pytest.mark.parametrize(
        "alias,expected",
        [
            ("kepler", KEPLER_K40),
            ("K40", KEPLER_K40),
            ("Maxwell", MAXWELL_TITANX),
            ("titanx", MAXWELL_TITANX),
            ("PASCAL", PASCAL_P100),
            ("p100", PASCAL_P100),
        ],
    )
    def test_alias(self, alias, expected):
        assert get_device(alias) is expected

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown device"):
            get_device("ampere")


class TestValidation:
    def test_with_override(self):
        dev = MAXWELL_TITANX.with_(l1_size=16 * 1024)
        assert dev.l1_size == 16 * 1024
        assert dev.l2_size == MAXWELL_TITANX.l2_size  # untouched

    def test_invalid_sms(self):
        with pytest.raises(ValueError):
            MAXWELL_TITANX.with_(num_sms=0).validate()

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            MAXWELL_TITANX.with_(dram_bandwidth=-1.0).validate()

    def test_thread_warp_multiple(self):
        with pytest.raises(ValueError):
            MAXWELL_TITANX.with_(max_threads_per_sm=100).validate()

    def test_line_size_relation(self):
        with pytest.raises(ValueError):
            MAXWELL_TITANX.with_(l1_line_size=48).validate()
