"""Metamorphic properties of the gpusim cost model, as plain pytest cases.

Deterministic pytest mirror of the ``gpusim.*`` checks that ``repro
verify`` fuzzes: a handful of hand-picked cases spanning the presets,
plus a small seeded sweep through the campaign's own generators.  Each
check returns a list of diagnostics; an empty list means the relation
held (see docs/verification.md for why each relation is provable).
"""

import numpy as np
import pytest

from repro.verify.generators import (
    CacheCase,
    KernelCase,
    OccupancyCase,
    PatternCase,
    draw_cache_case,
    draw_kernel_case,
    draw_occupancy_case,
    draw_pattern_case,
)
from repro.verify.properties import (
    check_cache_monotone,
    check_coalescing_order,
    check_occupancy_invariance,
    check_roofline_bound,
    check_timing_monotone,
)

DEVICES = ["maxwell", "kepler", "pascal", "volta"]


def _kernel_case(device, **overrides):
    params = dict(
        device=device,
        m=100_000,
        n=20_000,
        nnz=2_000_000,
        f=64,
        tile=8,
        threads_per_block=64,
        bin_size=32,
        read_scheme="noncoal-l1",
        precision="fp16",
    )
    params.update(overrides)
    return KernelCase(**params)


def _assert_clean(diags):
    assert diags == [], "\n".join(d.message for d in diags)


class TestTimingMonotone:
    """VF101/VF102: more work never makes a kernel faster."""

    @pytest.mark.parametrize("device", DEVICES)
    def test_paper_scale_workload(self, device):
        _assert_clean(check_timing_monotone(_kernel_case(device)))

    def test_small_workload_fp32_coalesced(self):
        case = _kernel_case(
            "maxwell", m=500, n=300, nnz=6_000, f=10,
            read_scheme="coalesced", precision="fp32",
        )
        _assert_clean(check_timing_monotone(case))


class TestRooflineBound:
    """VF103: no kernel beats peak FLOPs or DRAM bandwidth."""

    @pytest.mark.parametrize("device", DEVICES)
    def test_paper_scale_workload(self, device):
        _assert_clean(check_roofline_bound(_kernel_case(device)))

    @pytest.mark.parametrize("scheme", ["coalesced", "noncoal-l1", "noncoal-nol1"])
    def test_all_read_schemes(self, scheme):
        _assert_clean(check_roofline_bound(_kernel_case("maxwell", read_scheme=scheme)))


class TestCoalescingOrder:
    """VF104: coalescing is transaction-optimal (paper Fig. 3)."""

    @pytest.mark.parametrize("stride", [1, 2, 7, 32, 1000])
    @pytest.mark.parametrize("element_bytes", [2, 4, 8])
    def test_explicit_strides(self, stride, element_bytes):
        case = PatternCase(
            num_elements=4096, element_bytes=element_bytes, stride_elements=stride
        )
        _assert_clean(check_coalescing_order(case))

    def test_empty_payload(self):
        _assert_clean(
            check_coalescing_order(
                PatternCase(num_elements=0, element_bytes=4, stride_elements=1)
            )
        )


class TestOccupancyInvariance:
    """VF105: occupancy arithmetic is per-SM (paper Observation 2)."""

    @pytest.mark.parametrize("device", DEVICES)
    @pytest.mark.parametrize("sm_scale", [2, 7])
    def test_typical_kernel(self, device, sm_scale):
        case = OccupancyCase(
            device=device,
            registers_per_thread=70,
            threads_per_block=64,
            shared_mem_per_block=8192,
            sm_scale=sm_scale,
        )
        _assert_clean(check_occupancy_invariance(case))

    def test_unlaunchable_kernel_is_skipped(self):
        case = OccupancyCase(
            device="maxwell",
            registers_per_thread=10_000,
            threads_per_block=256,
            shared_mem_per_block=0,
            sm_scale=2,
        )
        _assert_clean(check_occupancy_invariance(case))


class TestCacheMonotone:
    """VF106: the analytic hit rate decays as the working set spills."""

    @pytest.mark.parametrize("reuse", [1.0, 2.0, 13.5])
    def test_working_set_ladder(self, reuse):
        case = CacheCase(
            cache_bytes=3 * 1024 * 1024,
            base_working_set_bytes=256 * 1024,
            reuse_factor=reuse,
        )
        _assert_clean(check_cache_monotone(case))

    def test_tiny_cache_huge_set(self):
        case = CacheCase(
            cache_bytes=1024,
            base_working_set_bytes=64 * 1024 * 1024,
            reuse_factor=4.0,
        )
        _assert_clean(check_cache_monotone(case))


class TestSeededSweep:
    """The campaign generators themselves, at a fixed seed: every drawn
    case must satisfy its property (this is a 20-case slice of what
    ``repro verify`` runs at scale)."""

    @pytest.mark.parametrize(
        ("draw", "check"),
        [
            (draw_kernel_case, check_timing_monotone),
            (draw_kernel_case, check_roofline_bound),
            (draw_pattern_case, check_coalescing_order),
            (draw_occupancy_case, check_occupancy_invariance),
            (draw_cache_case, check_cache_monotone),
        ],
        ids=["monotone", "roofline", "coalescing", "occupancy", "cache"],
    )
    def test_drawn_cases_hold(self, draw, check):
        rng = np.random.default_rng(2018)
        for _ in range(4):
            case = draw(rng)
            diags = check(case)
            assert diags == [], f"{case}: " + "; ".join(d.message for d in diags)
