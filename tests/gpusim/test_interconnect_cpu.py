"""Tests for interconnect, memcpy, cuBLAS yardsticks and CPU models."""

import pytest

from repro.gpusim import (
    ETHERNET_10G,
    KEPLER_K40,
    MAXWELL_TITANX,
    NOMAD_HPC_NODE,
    NVLINK_P100,
    PASCAL_P100,
    PCIE_GEN3_X16,
    XEON_E5_2670,
    ClusterSpec,
    Link,
    allgather_time,
    broadcast_time,
    cpu_als_epoch_time,
    cpu_sgd_epoch_time,
    gemm_batched_cost,
    lu_batched_cost,
    memcpy_bandwidth,
    memcpy_time,
)


class TestLinks:
    def test_nvlink_much_faster_than_ethernet(self):
        """Paper intro: NVLink 40 GB/s/link ≫ any existing network."""
        nbytes = 1e9
        assert NVLINK_P100.transfer_time(nbytes) < ETHERNET_10G.transfer_time(nbytes) / 20

    def test_alpha_beta(self):
        t = PCIE_GEN3_X16.transfer_time(12e9)
        assert t == pytest.approx(1.0 + PCIE_GEN3_X16.latency, rel=1e-6)

    def test_zero_bytes_free(self):
        assert NVLINK_P100.transfer_time(0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            NVLINK_P100.transfer_time(-1)

    def test_broadcast_log_rounds(self):
        one = broadcast_time(NVLINK_P100, 1e6, num_peers=1)
        three = broadcast_time(NVLINK_P100, 1e6, num_peers=3)
        assert three == pytest.approx(2 * one)
        assert broadcast_time(NVLINK_P100, 1e6, 0) == 0.0

    def test_allgather_ring(self):
        t4 = allgather_time(NVLINK_P100, 1e8, 4)
        # Ring moves total*(p-1)/p through each link.
        expect = 3 * NVLINK_P100.latency + (4e8 * 3 / 4) / NVLINK_P100.bandwidth
        assert t4 == pytest.approx(expect)
        assert allgather_time(NVLINK_P100, 1e8, 1) == 0.0
        with pytest.raises(ValueError):
            allgather_time(NVLINK_P100, 1e8, 0)


class TestMemcpy:
    def test_pascal_faster_than_kepler(self):
        assert memcpy_bandwidth(PASCAL_P100) > memcpy_bandwidth(KEPLER_K40)

    def test_d2d_payload_under_half_pins(self):
        assert memcpy_bandwidth(MAXWELL_TITANX) < MAXWELL_TITANX.dram_bandwidth / 2

    def test_time(self):
        bw = memcpy_bandwidth(MAXWELL_TITANX)
        assert memcpy_time(MAXWELL_TITANX, bw) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            memcpy_time(MAXWELL_TITANX, -1)


class TestCublas:
    def test_gemm_batched_flops(self):
        c = gemm_batched_cost(MAXWELL_TITANX, batch=1000, m=100, k=200, n=100)
        assert c.flops == 2.0 * 1000 * 100 * 200 * 100
        assert 0 < c.achieved_flops < MAXWELL_TITANX.peak_flops_fp32

    def test_newer_devices_faster(self):
        t_k = gemm_batched_cost(KEPLER_K40, 1000, 100, 200, 100).seconds
        t_p = gemm_batched_cost(PASCAL_P100, 1000, 100, 200, 100).seconds
        assert t_p < t_k

    def test_lu_batched_scales_cubically(self):
        t50 = lu_batched_cost(MAXWELL_TITANX, batch=10_000, f=50)
        t100 = lu_batched_cost(MAXWELL_TITANX, batch=10_000, f=100)
        assert t100 / t50 == pytest.approx(8.0, rel=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            gemm_batched_cost(MAXWELL_TITANX, -1, 1, 1, 1)
        with pytest.raises(ValueError):
            lu_batched_cost(MAXWELL_TITANX, -1, 10)


class TestCpu:
    def test_peak_flops(self):
        # 24 cores x 2.3 GHz x 32 flops/cycle.
        assert XEON_E5_2670.peak_flops == pytest.approx(24 * 2.3e9 * 32)

    def test_parallel_efficiency_decays(self):
        e1 = XEON_E5_2670.effective_parallelism(1)
        e40 = XEON_E5_2670.effective_parallelism(40)
        assert e1 == pytest.approx(1.0)
        assert e40 < 40
        assert e40 > 20  # still mostly scales

    def test_sgd_epoch_scales_with_nnz(self):
        t1 = cpu_sgd_epoch_time(XEON_E5_2670, 10**6, 100, threads=40)
        t2 = cpu_sgd_epoch_time(XEON_E5_2670, 2 * 10**6, 100, threads=40)
        assert t2 == pytest.approx(2 * t1)

    def test_als_epoch_has_cubic_solve_term(self):
        base = dict(nnz=10**6, m=10_000, n=1_000, threads=40)
        t50 = cpu_als_epoch_time(XEON_E5_2670, f=50, **base)
        t100 = cpu_als_epoch_time(XEON_E5_2670, f=100, **base)
        assert t100 > 2 * t50  # superlinear in f

    def test_workload_validation(self):
        with pytest.raises(ValueError):
            cpu_sgd_epoch_time(XEON_E5_2670, -1, 100, threads=4)
        with pytest.raises(ValueError):
            cpu_als_epoch_time(XEON_E5_2670, 100, 10, 10, 0, threads=4)
        with pytest.raises(ValueError):
            XEON_E5_2670.effective_parallelism(0)

    def test_cluster_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(node=NOMAD_HPC_NODE, num_nodes=0, link=ETHERNET_10G)
        with pytest.raises(ValueError):
            ClusterSpec(
                node=NOMAD_HPC_NODE, num_nodes=2, link=ETHERNET_10G, comm_overlap=1.5
            )
