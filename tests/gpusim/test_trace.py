"""Trace-driven validation of the Figure-4 cache assumptions."""

import pytest

from repro.data import SyntheticConfig, generate_ratings
from repro.gpusim import MAXWELL_TITANX
from repro.gpusim.trace import simulate_staging


@pytest.fixture(scope="module")
def ratings():
    """Uniform popularity with θ (4000 x 64 x 4B = 1 MB) far exceeding L1:
    isolates sector reuse, the mechanism the Figure-4 model prices."""
    return generate_ratings(
        SyntheticConfig(m=400, n=4_000, nnz=20_000, zipf_exponent=0.0, seed=2)
    )


@pytest.fixture(scope="module")
def skewed():
    """Netflix-like Zipf skew: hot θ columns drive inter-block reuse."""
    return generate_ratings(
        SyntheticConfig(m=600, n=2_000, nnz=24_000, zipf_exponent=1.2, seed=3)
    )


class TestStagingTrace:
    def test_strided_l1_hits_near_seven_eighths(self, ratings):
        """The cost model assumes FP32 strided reads hit L1 on 7 of 8
        touches (sector reuse). The exact replay at the paper's f=100
        must agree."""
        r = simulate_staging(MAXWELL_TITANX, ratings, f=100, coalesced_scheme=False)
        assert r.l1_hit_rate == pytest.approx(7 / 8, abs=0.03)

    def test_power_of_two_stride_aliases_l1_sets(self, ratings):
        """f=64 gives a 256B column stride whose sectors land on few L1
        sets — conflict misses the paper's f=100 (400B stride) avoids.
        A real pitfall for anyone retuning f on this kernel."""
        aligned = simulate_staging(MAXWELL_TITANX, ratings, f=64)
        odd = simulate_staging(MAXWELL_TITANX, ratings, f=100)
        assert aligned.l1_hit_rate < odd.l1_hit_rate - 0.15

    def test_coalesced_reads_have_less_l1_reuse_than_strided(self, ratings):
        """A 128B line serves one full coalesced 32-lane request, so
        coalesced staging has no sector-amplification reuse — its L1 hit
        rate must sit far below the strided scheme's 7/8."""
        coal = simulate_staging(MAXWELL_TITANX, ratings, f=100, coalesced_scheme=True)
        strided = simulate_staging(
            MAXWELL_TITANX, ratings, f=100, coalesced_scheme=False
        )
        assert coal.l1_hit_rate < strided.l1_hit_rate - 0.5

    def test_no_l1_pushes_reuse_to_l2(self, ratings):
        r = simulate_staging(
            MAXWELL_TITANX, ratings, f=100, coalesced_scheme=False, use_l1=False
        )
        assert r.l1_hit_rate == 0.0
        assert r.l2_hit_rate > 0.8  # sector reuse served by L2 instead

    def test_hot_columns_give_l2_reuse(self, ratings, skewed):
        """Zipf-hot θ columns staged by one block hit in L2 when a later
        block stages them — reuse that uniform popularity lacks."""
        hot = simulate_staging(
            MAXWELL_TITANX, skewed, f=100, coalesced_scheme=True, use_l1=False
        )
        cold = simulate_staging(
            MAXWELL_TITANX, ratings, f=100, coalesced_scheme=True, use_l1=False
        )
        assert hot.l2_hit_rate > cold.l2_hit_rate

    def test_dram_fraction_bounded(self, ratings):
        r = simulate_staging(MAXWELL_TITANX, ratings, f=100)
        assert 0.0 <= r.dram_fraction <= 1.0
        assert r.dram_fraction < 0.14  # sector reuse caps cold misses

    def test_level_fractions_export(self, ratings):
        r = simulate_staging(MAXWELL_TITANX, ratings, f=32, num_rows=16)
        fr = r.as_level_fractions()
        assert fr.l1 + fr.l2 + fr.dram == pytest.approx(1.0)

    def test_sector_count_matches_workload(self, ratings):
        """Strided staging touches one sector per (rating, element) pair
        with 8 fp32 elements per 32B sector."""
        import numpy as np

        rng = np.random.default_rng(0)
        candidates = np.flatnonzero(ratings.row_counts() > 0)
        sample = rng.choice(candidates, size=min(48, candidates.size), replace=False)
        f = 32
        expected = int(ratings.row_counts()[sample].sum()) * f
        r = simulate_staging(MAXWELL_TITANX, ratings, f=f, seed=0)
        assert r.accesses == expected

    def test_validation(self, ratings):
        with pytest.raises(ValueError):
            simulate_staging(MAXWELL_TITANX, ratings, f=0)
        from repro.data import RatingMatrix

        empty = RatingMatrix.from_coo([], [], [], m=4, n=4)
        with pytest.raises(ValueError, match="non-empty"):
            simulate_staging(MAXWELL_TITANX, empty, f=8)
