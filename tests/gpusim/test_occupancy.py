"""Occupancy calculator tests, including the paper's worked example."""

import pytest

from repro.gpusim import (
    KEPLER_K40,
    MAXWELL_TITANX,
    KernelResources,
    compute_occupancy,
)


class TestPaperObservation2:
    """Paper §III: f=100 → 168 regs/thread, 64 threads/block → ≈6 blocks/SM."""

    def test_get_hermitian_resident_blocks(self):
        res = KernelResources(registers_per_thread=168, threads_per_block=64)
        occ = compute_occupancy(MAXWELL_TITANX, res)
        assert occ.blocks_per_sm == 6  # 65536 // (168 * 64)
        assert occ.limiter == "registers"

    def test_low_occupancy_flag(self):
        res = KernelResources(registers_per_thread=168, threads_per_block=64)
        occ = compute_occupancy(MAXWELL_TITANX, res)
        # 6 blocks x 2 warps = 12 warps of 64 possible -> 18.75%.
        assert occ.warps_per_sm == 12
        assert occ.occupancy == pytest.approx(12 / 64)
        assert occ.is_latency_limited


class TestLimits:
    def test_thread_limited(self):
        res = KernelResources(registers_per_thread=16, threads_per_block=1024)
        occ = compute_occupancy(MAXWELL_TITANX, res)
        assert occ.blocks_per_sm == 2
        assert occ.limiter == "threads"
        assert occ.occupancy == 1.0

    def test_block_limited(self):
        res = KernelResources(registers_per_thread=16, threads_per_block=32)
        occ = compute_occupancy(MAXWELL_TITANX, res)
        assert occ.blocks_per_sm == MAXWELL_TITANX.max_blocks_per_sm
        assert occ.limiter == "blocks"

    def test_shared_memory_limited(self):
        res = KernelResources(
            registers_per_thread=16,
            threads_per_block=64,
            shared_mem_per_block=24 * 1024,
        )
        occ = compute_occupancy(MAXWELL_TITANX, res)
        assert occ.blocks_per_sm == 4  # 96KB / 24KB
        assert occ.limiter == "shared_memory"

    def test_kepler_has_16_block_cap(self):
        res = KernelResources(registers_per_thread=16, threads_per_block=32)
        occ = compute_occupancy(KEPLER_K40, res)
        assert occ.blocks_per_sm == 16


class TestErrors:
    def test_too_many_registers_per_thread(self):
        res = KernelResources(registers_per_thread=300, threads_per_block=64)
        with pytest.raises(ValueError, match="registers/thread"):
            compute_occupancy(MAXWELL_TITANX, res)

    def test_block_too_large(self):
        res = KernelResources(registers_per_thread=32, threads_per_block=4096)
        with pytest.raises(ValueError):
            compute_occupancy(MAXWELL_TITANX, res)

    def test_smem_block_too_large(self):
        res = KernelResources(
            registers_per_thread=32,
            threads_per_block=64,
            shared_mem_per_block=64 * 1024,
        )
        with pytest.raises(ValueError, match="cannot launch"):
            compute_occupancy(MAXWELL_TITANX, res)

    def test_bad_resources_rejected(self):
        with pytest.raises(ValueError):
            KernelResources(registers_per_thread=0, threads_per_block=64)
        with pytest.raises(ValueError):
            KernelResources(registers_per_thread=32, threads_per_block=0)
        with pytest.raises(ValueError):
            KernelResources(
                registers_per_thread=32, threads_per_block=64, shared_mem_per_block=-1
            )

    def test_register_overflow_single_block(self):
        # One block alone exceeding the register file cannot launch.
        res = KernelResources(registers_per_thread=255, threads_per_block=512)
        with pytest.raises(ValueError, match="cannot launch"):
            compute_occupancy(MAXWELL_TITANX, res)

    def test_zero_limit_names_registers(self):
        res = KernelResources(registers_per_thread=255, threads_per_block=512)
        with pytest.raises(ValueError, match="registers limit is zero"):
            compute_occupancy(MAXWELL_TITANX, res)

    def test_zero_limit_names_shared_memory(self):
        res = KernelResources(
            registers_per_thread=32,
            threads_per_block=64,
            shared_mem_per_block=64 * 1024,
        )
        with pytest.raises(ValueError, match="shared_memory limit is zero"):
            compute_occupancy(MAXWELL_TITANX, res)


class TestRequestedRegisters:
    def test_defaults_to_unknown(self):
        res = KernelResources(registers_per_thread=32, threads_per_block=64)
        assert res.requested_registers == 0
        assert not res.is_register_clamped

    def test_clamped_demand_recorded(self):
        res = KernelResources(
            registers_per_thread=255, threads_per_block=64,
            requested_registers=300,
        )
        assert res.is_register_clamped

    def test_demand_equal_to_allocation_not_clamped(self):
        res = KernelResources(
            registers_per_thread=168, threads_per_block=64,
            requested_registers=168,
        )
        assert not res.is_register_clamped

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            KernelResources(
                registers_per_thread=32, threads_per_block=64,
                requested_registers=-1,
            )

    def test_demand_below_allocation_rejected(self):
        # A clamp can only reduce the allocation, never inflate it.
        with pytest.raises(ValueError, match="below the clamped"):
            KernelResources(
                registers_per_thread=168, threads_per_block=64,
                requested_registers=100,
            )
