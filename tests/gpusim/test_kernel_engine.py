"""Tests for KernelSpec timing and the SimEngine ledger."""

import pytest

from repro.gpusim import (
    MAXWELL_TITANX,
    PASCAL_P100,
    KernelResources,
    KernelSpec,
    LevelFractions,
    MemoryPhase,
    SimEngine,
    coalesced,
    time_kernel,
)


def make_spec(**kw):
    defaults = dict(
        name="k",
        resources=KernelResources(registers_per_thread=32, threads_per_block=256),
        grid_blocks=10_000,
        flops=1e9,
        memory_phases=(
            MemoryPhase("load", coalesced(32 * 100_000), LevelFractions.all_dram()),
        ),
    )
    defaults.update(kw)
    return KernelSpec(**defaults)


class TestTimeKernel:
    def test_phases_reported(self):
        t = time_kernel(MAXWELL_TITANX, make_spec())
        assert t.seconds > 0
        assert "load" in t.memory
        assert t.compute.seconds > 0
        assert t.phase_seconds("compute") > 0
        assert t.phase_seconds("load") > 0

    def test_sum_vs_max_overlap(self):
        t_sum = time_kernel(MAXWELL_TITANX, make_spec(overlap="sum"))
        t_max = time_kernel(MAXWELL_TITANX, make_spec(overlap="max"))
        assert t_sum.seconds > t_max.seconds
        assert t_max.seconds == pytest.approx(
            max(t_max.compute.seconds, t_max.memory_seconds) * t_max.tail_factor
        )

    def test_duplicate_phase_rejected(self):
        spec = make_spec(
            memory_phases=(
                MemoryPhase("load", coalesced(32), LevelFractions.all_dram()),
                MemoryPhase("load", coalesced(32), LevelFractions.all_dram()),
            )
        )
        with pytest.raises(ValueError, match="duplicate"):
            time_kernel(MAXWELL_TITANX, spec)

    def test_tail_factor_penalizes_tiny_grids(self):
        # Exactly one wave of blocks runs as fast per-block as many waves;
        # a grid of wave+1 pays nearly 2x.
        occ_blocks = 8 * MAXWELL_TITANX.num_sms  # 8 blocks/SM for these resources
        small = time_kernel(MAXWELL_TITANX, make_spec(grid_blocks=occ_blocks))
        straggler = time_kernel(MAXWELL_TITANX, make_spec(grid_blocks=occ_blocks + 1))
        assert straggler.tail_factor > 1.5
        assert small.tail_factor == pytest.approx(1.0)

    def test_fp16_compute_faster_only_on_native_devices(self):
        spec32 = make_spec(compute_dtype_bytes=4, memory_phases=())
        spec16 = make_spec(compute_dtype_bytes=2, memory_phases=())
        assert time_kernel(PASCAL_P100, spec16).seconds == pytest.approx(
            time_kernel(PASCAL_P100, spec32).seconds / 2
        )
        assert time_kernel(MAXWELL_TITANX, spec16).seconds == pytest.approx(
            time_kernel(MAXWELL_TITANX, spec32).seconds
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            make_spec(grid_blocks=-1)
        with pytest.raises(ValueError):
            make_spec(flops=-1.0)

    def test_instruction_efficiency_bounds(self):
        with pytest.raises(ValueError, match="instruction_efficiency"):
            make_spec(instruction_efficiency=0.0)
        with pytest.raises(ValueError, match="instruction_efficiency"):
            make_spec(instruction_efficiency=1.5)
        assert make_spec(instruction_efficiency=1.0).instruction_efficiency == 1.0

    def test_compute_dtype_bytes_must_be_positive(self):
        with pytest.raises(ValueError, match="compute_dtype_bytes"):
            make_spec(compute_dtype_bytes=0)
        with pytest.raises(ValueError, match="compute_dtype_bytes"):
            make_spec(compute_dtype_bytes=-2)


class TestSimEngine:
    def test_clock_advances(self):
        eng = SimEngine(MAXWELL_TITANX)
        t = eng.launch(make_spec())
        assert eng.clock == pytest.approx(t.seconds)
        eng.launch(make_spec())
        assert eng.clock == pytest.approx(2 * t.seconds)

    def test_ledger_by_name(self):
        eng = SimEngine(MAXWELL_TITANX)
        eng.launch(make_spec(name="a"))
        eng.launch(make_spec(name="a"))
        eng.launch(make_spec(name="b"))
        by = eng.seconds_by_name()
        assert by["a"] == pytest.approx(2 * by["b"])
        assert eng.total_seconds("b") == pytest.approx(by["b"])
        assert eng.total_seconds() == pytest.approx(eng.clock)

    def test_tags(self):
        eng = SimEngine(MAXWELL_TITANX)
        eng.launch(make_spec(name="a"), tag="update_x")
        eng.transfer("bcast", 0.5, tag="comm")
        tags = eng.seconds_by_tag()
        assert tags["comm"] == 0.5
        assert "update_x" in tags

    def test_transfer_and_host(self):
        eng = SimEngine(MAXWELL_TITANX)
        eng.transfer("h2d", 0.25)
        eng.host("setup", 0.75)
        assert eng.clock == pytest.approx(1.0)
        with pytest.raises(ValueError):
            eng.transfer("bad", -1.0)
        with pytest.raises(ValueError):
            eng.host("bad", -1.0)

    def test_sync_to(self):
        eng = SimEngine(MAXWELL_TITANX)
        eng.host("work", 1.0)
        eng.sync_to(0.5)  # behind: no-op
        assert eng.clock == pytest.approx(1.0)
        eng.sync_to(2.0)
        assert eng.clock == pytest.approx(2.0)
        assert eng.records[-1].name == "barrier_wait"

    def test_reset(self):
        eng = SimEngine(MAXWELL_TITANX)
        eng.host("x", 1.0)
        eng.reset()
        assert eng.clock == 0.0
        assert not eng.records
