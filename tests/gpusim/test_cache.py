"""Tests for the trace-driven and analytic cache models."""

import numpy as np
import pytest

from repro.gpusim import SetAssociativeCache, analytic_hit_rate


class TestSetAssociativeCache:
    def make(self, size=1024, line=32, ways=2):
        return SetAssociativeCache(size_bytes=size, line_size=line, associativity=ways)

    def test_geometry(self):
        c = self.make()
        assert c.num_sets == 1024 // (32 * 2)

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(0, 32, 2)
        with pytest.raises(ValueError):
            SetAssociativeCache(1000, 32, 3)  # not a multiple

    def test_cold_miss_then_hit(self):
        c = self.make()
        assert not c.access(0)
        assert c.access(0)
        assert c.access(31)  # same 32B line
        assert not c.access(32)  # next line

    def test_lru_eviction(self):
        c = SetAssociativeCache(64, 32, 2)  # 1 set, 2 ways
        c.access(0)
        c.access(32)
        c.access(0)  # touch line 0 -> line 1 (addr 32) is now LRU
        c.access(64)  # evicts line 1
        assert c.access(0)
        assert not c.access(32)  # was evicted

    def test_set_isolation(self):
        c = SetAssociativeCache(128, 32, 1)  # 4 sets, direct-mapped
        c.access(0)  # set 0
        c.access(32)  # set 1
        assert c.access(0)
        assert c.access(32)

    def test_stats(self):
        c = self.make()
        c.access(0)
        c.access(0)
        c.access(64)
        assert c.stats.accesses == 3
        assert c.stats.hits == 1
        assert c.stats.misses == 2
        assert c.stats.hit_rate == pytest.approx(1 / 3)

    def test_trace_replay_matches_scalar(self):
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 4096, size=500)
        c1 = self.make()
        hits_vec = c1.access_trace(addrs)
        c2 = self.make()
        hits_scalar = sum(c2.access(int(a)) for a in addrs)
        assert hits_vec == hits_scalar

    def test_flush(self):
        c = self.make()
        c.access(0)
        c.flush()
        assert not c.access(0)
        assert c.resident_lines() == 1

    def test_contains(self):
        c = self.make()
        c.access(100)
        assert 100 in c
        assert 96 in c  # same line
        assert 128 not in c

    def test_sequential_stream_all_miss_at_line_granularity(self):
        """A pure streaming read hits only within a line."""
        c = self.make(size=1024, line=32, ways=2)
        addrs = np.arange(0, 4096, 4)  # fp32 stream
        hits = c.access_trace(addrs)
        # 8 accesses per 32B line, first one misses.
        assert hits == len(addrs) * 7 // 8


class TestAnalyticHitRate:
    def test_fits_in_cache(self):
        # Working set fits: hit rate = (r-1)/r.
        assert analytic_hit_rate(10_000, 48 * 1024, reuse_factor=8) == pytest.approx(
            7 / 8
        )

    def test_no_reuse_no_hits(self):
        assert analytic_hit_rate(10_000, 48 * 1024, reuse_factor=1) == 0.0

    def test_spill_decay_monotone(self):
        rates = [
            analytic_hit_rate(ws, 48 * 1024, reuse_factor=8)
            for ws in [40_000, 60_000, 100_000, 200_000]
        ]
        assert all(a >= b for a, b in zip(rates, rates[1:]))
        assert rates[-1] < 0.01  # 4x over-subscription ~ no hits

    def test_zero_cache(self):
        assert analytic_hit_rate(100, 0, reuse_factor=8) == 0.0

    def test_zero_working_set(self):
        assert analytic_hit_rate(0, 1024, reuse_factor=4) == pytest.approx(3 / 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            analytic_hit_rate(-1, 10, reuse_factor=2)
        with pytest.raises(ValueError):
            analytic_hit_rate(1, 10, reuse_factor=0.5)

    def test_paper_working_set_fits_l2_not_l1(self):
        """Paper §III: 75 KB of active θ columns per SM sits between
        Maxwell's 48 KB L1 and its 128 KB/SM share of L2."""
        ws = 100 * 32 * 6 * 4  # f x BIN x blocks x sizeof(float) = 75 KB
        assert ws == 76800
        l1 = analytic_hit_rate(ws, 48 * 1024, reuse_factor=8)
        l2 = analytic_hit_rate(ws, 128 * 1024, reuse_factor=8)
        assert l2 == pytest.approx(7 / 8)  # fits L2 share
        assert l1 < l2  # spills L1
