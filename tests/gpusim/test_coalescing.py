"""Tests for warp transaction counting."""

import pytest

from repro.gpusim import AccessPattern, broadcast, coalesced, strided


class TestCoalesced:
    def test_fp32_efficiency_is_one(self):
        p = coalesced(num_elements=32 * 100, element_bytes=4)
        assert p.requests == 100
        assert p.transactions == 400  # 4 sectors per warp request
        assert p.efficiency == 1.0
        assert p.concurrent_streams == 1

    def test_fp16_halves_transactions(self):
        p32 = coalesced(num_elements=3200, element_bytes=4)
        p16 = coalesced(num_elements=3200, element_bytes=2)
        assert p16.transactions == p32.transactions // 2
        assert p16.total_bytes == p32.total_bytes // 2

    def test_zero_elements(self):
        p = coalesced(0)
        assert p.transactions == 0
        assert p.moved_bytes == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            coalesced(-1)


class TestStrided:
    def test_large_stride_worst_case(self):
        # Each lane touches its own sector: 32 transactions per request.
        p = strided(num_elements=32 * 10, stride_bytes=400, element_bytes=4)
        assert p.requests == 10
        assert p.transactions == 320
        assert p.efficiency == pytest.approx(4 / 32)
        assert p.concurrent_streams == 32

    def test_strided_has_8x_wire_amplification_vs_coalesced(self):
        n = 32 * 1000
        wire_ratio = (
            strided(n, stride_bytes=400).moved_bytes / coalesced(n).moved_bytes
        )
        assert wire_ratio == pytest.approx(8.0)

    def test_small_stride_shares_sectors(self):
        # stride 8B: 4 lanes share a 32B sector -> 8 sectors per request.
        p = strided(num_elements=32, stride_bytes=8, element_bytes=4)
        assert p.transactions == 8

    def test_stride_validation(self):
        with pytest.raises(ValueError):
            strided(10, stride_bytes=0)
        with pytest.raises(ValueError):
            strided(-5, stride_bytes=4)


class TestBroadcast:
    def test_one_transaction_per_request(self):
        p = broadcast(num_requests=7)
        assert p.transactions == 7
        assert p.requests == 7

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            broadcast(-1)


class TestAccessPattern:
    def test_scaled(self):
        p = coalesced(3200).scaled(2.0)
        assert p.transactions == 800
        assert p.total_bytes == 25600

    def test_scaled_negative(self):
        with pytest.raises(ValueError):
            coalesced(32).scaled(-1)

    def test_combined(self):
        a = coalesced(3200)
        b = strided(3200, stride_bytes=400)
        c = a.combined(b)
        assert c.total_bytes == a.total_bytes + b.total_bytes
        assert c.transactions == a.transactions + b.transactions
        assert c.concurrent_streams == 1  # min of the two

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            AccessPattern(total_bytes=-1, transactions=0, requests=0, concurrent_streams=1)
        with pytest.raises(ValueError):
            AccessPattern(total_bytes=0, transactions=0, requests=0, concurrent_streams=0)

    def test_empty_pattern_efficiency(self):
        p = AccessPattern(total_bytes=0, transactions=0, requests=0, concurrent_streams=1)
        assert p.efficiency == 1.0
