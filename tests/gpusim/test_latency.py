"""Tests for the Little's-law memory engine — including the qualitative
reproduction of the paper's Figure 3/4 effect."""

import pytest

from repro.gpusim import (
    MAXWELL_TITANX,
    LevelFractions,
    coalesced,
    memory_phase_time,
    strided,
)


class TestLevelFractions:
    def test_sum_must_be_one(self):
        with pytest.raises(ValueError):
            LevelFractions(0.5, 0.5, 0.5)

    def test_range_check(self):
        with pytest.raises(ValueError):
            LevelFractions(-0.1, 0.6, 0.5)

    def test_from_hit_rates(self):
        fr = LevelFractions.from_hit_rates(l1_hit=0.875, l2_hit=0.8)
        assert fr.l1 == pytest.approx(0.875)
        assert fr.l2 == pytest.approx(0.125 * 0.8)
        assert fr.dram == pytest.approx(0.125 * 0.2)

    def test_all_dram(self):
        fr = LevelFractions.all_dram()
        assert fr.dram == 1.0
        assert fr.average_latency_cycles(MAXWELL_TITANX) == MAXWELL_TITANX.dram_latency_cycles

    def test_average_latency_mixes(self):
        fr = LevelFractions(0.5, 0.25, 0.25)
        expect = (
            0.5 * MAXWELL_TITANX.l1_latency_cycles
            + 0.25 * MAXWELL_TITANX.l2_latency_cycles
            + 0.25 * MAXWELL_TITANX.dram_latency_cycles
        )
        assert fr.average_latency_cycles(MAXWELL_TITANX) == pytest.approx(expect)


class TestMemoryPhase:
    def test_zero_pattern_is_free(self):
        t = memory_phase_time(
            MAXWELL_TITANX, coalesced(0), LevelFractions.all_dram(), warps_per_sm=12
        )
        assert t.seconds == 0.0

    def test_warps_validation(self):
        with pytest.raises(ValueError):
            memory_phase_time(
                MAXWELL_TITANX, coalesced(32), LevelFractions.all_dram(), warps_per_sm=0
            )

    def test_low_occupancy_coalesced_is_latency_bound(self):
        """Paper Observation 2: at 12 warps/SM coalesced DRAM reads cannot
        reach bandwidth."""
        n = 32 * 1_000_000
        t = memory_phase_time(
            MAXWELL_TITANX, coalesced(n), LevelFractions.all_dram(), warps_per_sm=12
        )
        assert t.limiter == "latency"
        assert t.achieved_bandwidth < 0.5 * MAXWELL_TITANX.dram_bandwidth

    def test_high_occupancy_coalesced_is_bandwidth_bound(self):
        n = 32 * 1_000_000
        t = memory_phase_time(
            MAXWELL_TITANX, coalesced(n), LevelFractions.all_dram(), warps_per_sm=64
        )
        assert t.limiter == "dram_bandwidth"
        assert t.achieved_bandwidth == pytest.approx(
            MAXWELL_TITANX.dram_bandwidth, rel=0.01
        )

    def test_figure4_ordering_noncoal_l1_fastest(self):
        """The paper's central memory result: at low occupancy,
        nonCoal-L1 < nonCoal-noL1 < coal for the staging load."""
        n = 32 * 4_000_000  # elements
        warps = 12  # 6 blocks x 64 threads on Maxwell

        coal = memory_phase_time(
            MAXWELL_TITANX, coalesced(n), LevelFractions.all_dram(), warps
        )
        # Non-coalesced: 8 fp32 of a column share a sector; with L1 the
        # 7 follow-up touches hit L1 and half the sector fills hit L2.
        noncoal_l1 = memory_phase_time(
            MAXWELL_TITANX,
            strided(n, stride_bytes=400),
            LevelFractions.from_hit_rates(l1_hit=7 / 8, l2_hit=0.5),
            warps,
        )
        # Without L1 the follow-up touches fall through to L2.
        noncoal_nol1 = memory_phase_time(
            MAXWELL_TITANX,
            strided(n, stride_bytes=400),
            LevelFractions.from_hit_rates(l1_hit=0.0, l2_hit=7 / 8 + 1 / 16),
            warps,
        )
        assert noncoal_l1.seconds < noncoal_nol1.seconds < coal.seconds

    def test_dram_bytes_accounting(self):
        n = 32 * 1000
        t = memory_phase_time(
            MAXWELL_TITANX, coalesced(n), LevelFractions.all_dram(), warps_per_sm=64
        )
        assert t.dram_bytes == pytest.approx(n * 4)  # eff=1 for fp32 coalesced
        assert t.l2_bytes == pytest.approx(n * 4)

    def test_l1_hits_produce_no_dram_traffic(self):
        n = 32 * 1000
        t = memory_phase_time(
            MAXWELL_TITANX,
            coalesced(n),
            LevelFractions(1.0, 0.0, 0.0),
            warps_per_sm=64,
        )
        assert t.dram_bytes == 0.0
        assert t.l2_bytes == 0.0
        assert t.limiter == "latency"

    def test_concurrency_is_capped(self):
        n = 32 * 100_000
        t = memory_phase_time(
            MAXWELL_TITANX,
            strided(n, stride_bytes=400),
            LevelFractions.all_dram(),
            warps_per_sm=64,
        )
        assert t.concurrency_per_sm <= MAXWELL_TITANX.max_outstanding_requests_per_sm
