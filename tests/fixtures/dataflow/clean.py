"""Clean fixture: the sanctioned versions of every seeded bug.

Same shapes as the ``bad_*`` fixtures, written the way the hot path
actually writes them — the analyzer must report nothing here.
Never imported.
"""

import numpy as np


def gram_into_scratch(ws, n, f):
    A = ws.request("fixture.A", (n, f, f))
    G = ws.request("fixture.G", (n, f, f))
    np.matmul(A, A, out=G)  # distinct arena key: no aliasing
    return G


def accumulate_at_fp32(ws, n, f):
    halves = ws.request("fixture.A16", (n, f, f), np.float16)
    wide = ws.request("fixture.A32", (n, f, f), np.float32)
    np.copyto(wide, halves)  # convert-on-load upcast (paper Solution 4)
    return np.einsum("bij,bjk->bik", wide, wide)


def solve_shard(ratings, out, lo, hi):
    rows_out = out[lo:hi]  # the sanctioned write window
    np.multiply(rows_out, 0.0, out=rows_out)
    return out
