"""Seeded-bug fixture: shard writer escapes its row slice (RC002).

A ``(out, lo, hi)`` worker must confine every write to ``out[lo:hi]``;
this one writes from row 0.  Never imported.
"""

import numpy as np


def solve_shard(ratings, out, lo, hi):
    rows = np.zeros(out.shape, dtype=np.float32)
    out[0:hi] = rows[0:hi]  # stomps rows below lo owned by another shard
    return out
