"""Seeded-bug fixture: reduction over FP16 storage (DF002).

The exact bug class paper Solution 4 warns about — accumulating at the
storage precision instead of converting on load.  Never imported.
"""

import numpy as np


def accumulate_at_storage_precision(ws, n, f):
    halves = ws.request("fixture.A16", (n, f, f), np.float16)
    return np.einsum("bij,bjk->bik", halves, halves)
