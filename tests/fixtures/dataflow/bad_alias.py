"""Seeded-bug fixture: ``out=`` aliases an operand of matmul (RC001).

Never imported — read and analyzed by tests/analysis/test_dataflow.py.
"""

import numpy as np


def gram_into_self(ws, n, f):
    A = ws.request("fixture.A", (n, f, f))
    np.matmul(A, A, out=A)  # matmul reads A while overwriting it
    return A
