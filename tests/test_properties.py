"""Property-based tests (hypothesis) on core data structures and invariants.

These cover the algebraic contracts the rest of the system leans on:
cache LRU behaviour, transaction accounting, CG-vs-exact agreement,
hermitian linearity, split partitioning and FP16 quantization bounds.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import (
    CGConfig,
    Precision,
    cg_solve_batched,
    hermitian_and_bias,
    lu_solve_batched,
    quantize,
)
from repro.core.multi_gpu import partition_rows
from repro.data import RatingMatrix, train_test_split
from repro.gpusim import (
    SetAssociativeCache,
    analytic_hit_rate,
    coalesced,
    strided,
)

settings.register_profile(
    "repro", deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
settings.load_profile("repro")


# ----------------------------------------------------------------------
# gpusim properties.
# ----------------------------------------------------------------------
class TestCacheProperties:
    @given(
        addrs=st.lists(st.integers(0, 2**16), min_size=1, max_size=300),
        ways=st.sampled_from([1, 2, 4]),
    )
    def test_hits_plus_misses_equals_accesses(self, addrs, ways):
        c = SetAssociativeCache(1024, 32, ways)
        for a in addrs:
            c.access(a)
        assert c.stats.hits + c.stats.misses == c.stats.accesses == len(addrs)

    @given(addrs=st.lists(st.integers(0, 2**12), min_size=1, max_size=200))
    def test_immediate_rereference_always_hits(self, addrs):
        c = SetAssociativeCache(2048, 32, 4)
        for a in addrs:
            c.access(a)
            assert c.access(a)  # MRU line cannot be evicted by itself

    @given(addrs=st.lists(st.integers(0, 2**14), min_size=1, max_size=200))
    def test_resident_lines_bounded_by_capacity(self, addrs):
        c = SetAssociativeCache(512, 32, 2)
        for a in addrs:
            c.access(a)
        assert c.resident_lines() <= 512 // 32

    @given(
        ws=st.floats(0, 1e7),
        cache=st.floats(1, 1e6),
        reuse=st.floats(1, 64),
    )
    def test_analytic_hit_rate_bounds(self, ws, cache, reuse):
        h = analytic_hit_rate(ws, cache, reuse)
        assert 0.0 <= h <= (reuse - 1) / reuse + 1e-12


class TestPatternProperties:
    @given(n=st.integers(0, 10**6), eb=st.sampled_from([2, 4]))
    def test_coalesced_moves_at_least_payload(self, n, eb):
        p = coalesced(n, element_bytes=eb)
        assert p.moved_bytes >= p.total_bytes
        assert 0 < p.efficiency <= 1 or n == 0

    @given(
        n=st.integers(1, 10**6),
        stride=st.integers(1, 4096),
        eb=st.sampled_from([2, 4]),
    )
    def test_strided_never_beats_coalesced_wire(self, n, stride, eb):
        s = strided(n, stride_bytes=stride, element_bytes=eb)
        c = coalesced(n, element_bytes=eb)
        assert s.moved_bytes >= c.moved_bytes - s.transaction_bytes

    @given(n=st.integers(0, 10**5), k=st.floats(0, 8))
    def test_scaling_is_linear(self, n, k):
        p = coalesced(n)
        q = p.scaled(k)
        assert q.total_bytes == pytest.approx(p.total_bytes * k, abs=2)


# ----------------------------------------------------------------------
# Solver properties.
# ----------------------------------------------------------------------
def spd_batches():
    return hnp.arrays(
        np.float32,
        st.tuples(st.integers(1, 6), st.integers(2, 10)).map(
            lambda t: (t[0], t[1], t[1])
        ),
        elements=st.floats(-1, 1, width=32),
    ).map(lambda Q: np.einsum("bij,bkj->bik", Q, Q) + 2 * np.eye(Q.shape[1], dtype=np.float32))


class TestSolverProperties:
    @given(A=spd_batches(), seed=st.integers(0, 10))
    def test_cg_converges_to_lu(self, A, seed):
        rng = np.random.default_rng(seed)
        b = rng.normal(size=A.shape[:2]).astype(np.float32)
        exact = lu_solve_batched(A, b)
        approx = cg_solve_batched(A, b, config=CGConfig(max_iters=60, tol=1e-7)).x
        np.testing.assert_allclose(approx, exact, rtol=2e-2, atol=2e-2)

    @given(A=spd_batches())
    def test_cg_residual_never_worse_than_start(self, A):
        b = np.ones(A.shape[:2], dtype=np.float32)
        res = cg_solve_batched(A, b, config=CGConfig(max_iters=4, tol=0.0))
        start = np.sqrt(np.einsum("bf,bf->b", b, b))
        assert (res.residual_norms <= start + 1e-3).all()

    @given(A=spd_batches(), scale=st.floats(1e-3, 1e3))
    def test_solution_scales_linearly_with_rhs(self, A, scale):
        b = np.ones(A.shape[:2], dtype=np.float32)
        x1 = cg_solve_batched(A, b, config=CGConfig(max_iters=40, tol=0.0)).x
        x2 = cg_solve_batched(
            A, (scale * b).astype(np.float32), config=CGConfig(max_iters=40, tol=0.0)
        ).x
        np.testing.assert_allclose(x2, scale * x1, rtol=5e-2, atol=1e-4 * scale)


class TestQuantizeProperties:
    @given(
        a=hnp.arrays(
            np.float32, st.integers(1, 100), elements=st.floats(-1e4, 1e4, width=32)
        )
    )
    def test_fp16_roundtrip_relative_error(self, a):
        q = quantize(a, Precision.FP16)
        err = np.abs(q - a)
        tol = np.maximum(np.abs(a) * 2**-10, 1e-7)
        assert (err <= tol + 1e-6).all()

    @given(
        a=hnp.arrays(
            np.float32, st.integers(1, 100), elements=st.floats(-1e8, 1e8, width=32)
        )
    )
    def test_fp16_always_finite(self, a):
        assert np.isfinite(quantize(a, Precision.FP16)).all()

    @given(
        a=hnp.arrays(
            np.float32, st.integers(1, 50), elements=st.floats(-100, 100, width=32)
        )
    )
    def test_quantize_idempotent(self, a):
        q1 = quantize(a, Precision.FP16)
        q2 = quantize(q1, Precision.FP16)
        np.testing.assert_array_equal(q1, q2)


# ----------------------------------------------------------------------
# Data properties.
# ----------------------------------------------------------------------
@st.composite
def coo_matrices(draw):
    m = draw(st.integers(2, 30))
    n = draw(st.integers(2, 30))
    k = draw(st.integers(1, 80))
    rng = np.random.default_rng(draw(st.integers(0, 2**16)))
    rows = rng.integers(0, m, size=k)
    cols = rng.integers(0, n, size=k)
    vals = rng.uniform(0.5, 5.0, size=k).astype(np.float32)
    return RatingMatrix.from_coo(rows, cols, vals, m=m, n=n)


class TestDataProperties:
    @given(r=coo_matrices())
    def test_csr_csc_views_agree(self, r):
        r.validate()
        from_rows = r.to_scipy().toarray()
        rebuilt = np.zeros_like(from_rows)
        for v in range(r.n):
            users, vals = r.item_users(v)
            rebuilt[users, v] = vals
        np.testing.assert_allclose(from_rows, rebuilt, rtol=1e-6)

    @given(r=coo_matrices())
    def test_transpose_involution(self, r):
        tt = r.transpose().transpose()
        assert (tt.to_scipy() != r.to_scipy()).nnz == 0

    @given(r=coo_matrices(), frac=st.floats(0.05, 0.9), seed=st.integers(0, 50))
    def test_split_is_exact_partition(self, r, frac, seed):
        s = train_test_split(r, frac, seed=seed)
        assert s.train.nnz + s.test.nnz == r.nnz
        diff = (s.train.to_scipy() + s.test.to_scipy()) - r.to_scipy()
        assert abs(diff).max() < 1e-5 if r.nnz else True

    @given(
        counts=st.lists(st.integers(0, 40), min_size=1, max_size=60),
        parts=st.integers(1, 8),
    )
    def test_partition_rows_contiguous_cover(self, counts, parts):
        ptr = np.concatenate([[0], np.cumsum(counts)])
        ranges = partition_rows(ptr, parts)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == len(counts)
        for (a, b), (c, d) in zip(ranges, ranges[1:]):
            assert b == c
            assert a <= b and c <= d


class TestHermitianProperties:
    @given(r=coo_matrices(), seed=st.integers(0, 20))
    def test_linearity_in_theta_outer(self, r, seed):
        """A(2θ) = 4·A(θ) - 3·λ n I (the quadratic form scales by 4)."""
        rng = np.random.default_rng(seed)
        theta = rng.normal(size=(r.n, 4)).astype(np.float32)
        lam = 0.3
        A1, b1 = hermitian_and_bias(r, theta, lam)
        A2, b2 = hermitian_and_bias(r, 2 * theta, lam)
        reg = lam * np.maximum(r.row_counts(), 1)[:, None, None] * np.eye(4)
        np.testing.assert_allclose(
            A2 - reg, 4 * (A1 - reg), rtol=5e-3, atol=1e-3
        )
        np.testing.assert_allclose(b2, 2 * b1, rtol=5e-3, atol=1e-3)

    @given(r=coo_matrices(), seed=st.integers(0, 20))
    def test_hermitian_symmetric_psd(self, r, seed):
        rng = np.random.default_rng(seed)
        theta = rng.normal(size=(r.n, 3)).astype(np.float32)
        A, _ = hermitian_and_bias(r, theta, 0.1)
        np.testing.assert_allclose(A, np.swapaxes(A, 1, 2), atol=1e-4)
        eig = np.linalg.eigvalsh(A.astype(np.float64))
        assert (eig > 0).all()
