"""Differential oracles: clean paths pass, injected bugs are caught."""

import dataclasses

import numpy as np
import pytest

import repro.verify.generators as generators
import repro.verify.oracles as oracles
from repro.verify.generators import (
    HermitianCase,
    SPDCase,
    TrajectoryCase,
    draw_hermitian_case,
    draw_spd_case,
)
from repro.verify.oracles import (
    check_cg_vs_direct,
    check_exact_pair,
    check_fp16_noise_floor,
    check_hermitian_solvers,
    check_rmse_trajectory,
)


def _spd(seed, **overrides):
    params = dict(batch=2, f=16, log10_cond=3.0, log10_scale=0.0, fs=0, seed=seed)
    params.update(overrides)
    return SPDCase(**params)


class TestCleanPathsPass:
    """On the healthy tree every oracle is silent (what CI fuzzes at scale)."""

    @pytest.mark.parametrize("seed", range(3))
    def test_exact_pair(self, seed):
        assert check_exact_pair(draw_spd_case(np.random.default_rng(seed))) == []

    @pytest.mark.parametrize("fs", [0, 3, 6])
    def test_cg_vs_direct(self, fs):
        assert check_cg_vs_direct(_spd(1, fs=fs)) == []

    def test_fp16_noise_floor(self):
        assert check_fp16_noise_floor(_spd(2, log10_cond=1.5)) == []

    @pytest.mark.parametrize("seed", range(3))
    def test_hermitian(self, seed):
        case = draw_hermitian_case(np.random.default_rng(seed))
        assert check_hermitian_solvers(case) == []

    def test_trajectory(self):
        case = TrajectoryCase(m=25, n=18, nnz=120, f=6, fs=4, epochs=2,
                              lam=0.08, seed=3)
        assert check_rmse_trajectory(case) == []


class TestNonFiniteDetection:
    """VF005: NaN in any solver output is an unconditional finding."""

    def test_nan_in_exact_path(self, monkeypatch):
        def poisoned(A, b):
            x = oracles.cholesky_solve_batched(A, b)
            x[0, 0] = np.nan
            return x

        monkeypatch.setattr(oracles, "lu_solve_batched", poisoned)
        diags = check_exact_pair(_spd(4))
        assert [d.rule_id for d in diags] == ["VF005"]

    def test_nan_in_cg_path(self, monkeypatch):
        real = oracles.cg_solve_batched

        def poisoned(A, b, **kwargs):
            res = real(A, b, **kwargs)
            x = res.x.copy()
            x[:] = np.inf
            return dataclasses.replace(res, x=x)

        monkeypatch.setattr(oracles, "cg_solve_batched", poisoned)
        diags = check_cg_vs_direct(_spd(5))
        assert diags and all(d.rule_id == "VF005" for d in diags)


class TestBugInjection:
    """The acceptance scenario: break a solver, the oracles must notice."""

    def test_dropped_regularizer_is_caught(self, monkeypatch):
        """Dropping the λ·I term leaves empty-row A_u exactly singular;
        the hermitian oracle must report it as VF001, not crash."""
        real = generators.hermitian_and_bias

        def no_lambda(ratings, theta, lam):
            return real(ratings, theta, 0.0)

        monkeypatch.setattr(generators, "hermitian_and_bias", no_lambda)
        case = HermitianCase(
            m=12, n=10, nnz=50, f=5, lam=0.1, zipf=0.8,
            empty_rows=2, empty_cols=0, seed=8,
        )
        diags = check_hermitian_solvers(case)
        assert [d.rule_id for d in diags] == ["VF001"]
        assert "positive definiteness" in diags[0].message

    def test_scaled_solution_breaks_krylov_bound(self, monkeypatch):
        """A 3% systematic error in CG is far above κ·eps32 at κ=10."""
        real = oracles.cg_solve_batched

        def buggy(A, b, **kwargs):
            res = real(A, b, **kwargs)
            return dataclasses.replace(res, x=res.x * np.float32(1.03))

        monkeypatch.setattr(oracles, "cg_solve_batched", buggy)
        diags = check_cg_vs_direct(_spd(6, log10_cond=1.0))
        assert any(d.rule_id == "VF002" for d in diags)

    def test_fp16_quantization_gone_wrong(self, monkeypatch):
        real = oracles.cg_solve_batched

        def buggy(A, b, **kwargs):
            res = real(A, b, **kwargs)
            if kwargs.get("precision") is oracles.Precision.FP16:
                return dataclasses.replace(res, x=res.x * np.float32(1.5))
            return res

        monkeypatch.setattr(oracles, "cg_solve_batched", buggy)
        diags = check_fp16_noise_floor(_spd(7, log10_cond=1.0))
        assert [d.rule_id for d in diags] == ["VF003"]


class TestTolerancesAreDerived:
    """The oracle bounds scale with the case, they are not magic numbers."""

    def test_exact_pair_tolerance_grows_with_cond(self):
        # Below κ ~ eps32/eps64 ≈ 5e8 the float32 round-trip dominates and
        # the bound is flat; beyond it the κ·eps64 term takes over.
        lo = oracles.EXACT_PAIR_C * max(oracles.EPS32, 1e2 * oracles.EPS64)
        hi = oracles.EXACT_PAIR_C * max(oracles.EPS32, 1e12 * oracles.EPS64)
        assert lo == oracles.EXACT_PAIR_C * oracles.EPS32
        assert hi > lo

    def test_krylov_tolerance_caps_at_one(self):
        tol = min(1.0, oracles.CG_KRYLOV_C * 1e12 * oracles.EPS32)
        assert tol == 1.0
