"""Campaign runner: scheduling, determinism, shrinking, fixtures, CLI."""

import dataclasses
import json

import numpy as np
import pytest

import repro.verify.generators as generators
import repro.verify.oracles as oracles
from repro.analysis import Severity
from repro.cli import main
from repro.verify import (
    CHECKS,
    FIXTURE_SCHEMA,
    REPORT_SCHEMA,
    VerifyConfig,
    load_fixture,
    render_report_json,
    render_report_text,
    replay_fixture,
    run_campaign,
    run_check_once,
)

FAST_CHECKS = ("gpusim.coalescing", "gpusim.occupancy", "gpusim.cache")


class TestConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            VerifyConfig(seed=-1)
        with pytest.raises(ValueError):
            VerifyConfig(budget=0)
        with pytest.raises(ValueError):
            VerifyConfig(shrink_attempts=-1)

    def test_rejects_unknown_check(self):
        with pytest.raises(ValueError, match="no.such.check"):
            VerifyConfig(checks=("no.such.check",))

    def test_fleet_check_is_registered(self):
        check = CHECKS["serving.fleet"]
        assert check.weight == 0.25  # forks worker pools; deliberately rare
        assert "VF111" in check.summary


class TestScheduling:
    def test_every_check_runs_with_budget_at_count(self):
        result = run_campaign(
            VerifyConfig(seed=1, budget=len(FAST_CHECKS), checks=FAST_CHECKS,
                         fixtures_dir=None)
        )
        assert result.executed == len(FAST_CHECKS)
        assert all(cases == 1 for _, cases, _ in result.counts)

    def test_budget_is_spent_exactly(self):
        result = run_campaign(
            VerifyConfig(seed=1, budget=17, checks=FAST_CHECKS, fixtures_dir=None)
        )
        assert result.executed == 17
        assert sum(cases for _, cases, _ in result.counts) == 17

    def test_weighted_check_runs_less(self):
        pair = ("gpusim.cache", "als.trajectory")  # weights 1.0 vs 0.25
        result = run_campaign(
            VerifyConfig(seed=0, budget=10, checks=pair, fixtures_dir=None)
        )
        counts = {name: cases for name, cases, _ in result.counts}
        assert counts["als.trajectory"] < counts["gpusim.cache"]
        assert counts["als.trajectory"] >= 1


class TestCleanCampaign:
    def test_passes_and_is_deterministic(self):
        cfg = VerifyConfig(seed=5, budget=12, checks=FAST_CHECKS, fixtures_dir=None)
        a, b = run_campaign(cfg), run_campaign(cfg)
        assert a.failures == () and a.max_severity() is None
        assert a.passed == a.executed == 12
        assert render_report_json(a) == render_report_json(b)

    def test_json_report_schema(self):
        result = run_campaign(
            VerifyConfig(seed=2, budget=6, checks=FAST_CHECKS, fixtures_dir=None)
        )
        payload = json.loads(render_report_json(result))
        assert payload["schema"] == REPORT_SCHEMA
        assert payload["executed"] == 6
        assert payload["failed"] == 0 and payload["max_severity"] is None
        assert set(payload["checks"]) == set(FAST_CHECKS)

    def test_text_report_mentions_every_check(self):
        result = run_campaign(
            VerifyConfig(seed=2, budget=6, checks=FAST_CHECKS, fixtures_dir=None)
        )
        text = render_report_text(result)
        assert all(name in text for name in FAST_CHECKS)


class TestFleetCheck:
    def test_vf111_green_on_a_pinned_case(self):
        # One deterministic VF111 case end to end: equivalence leg,
        # chaos leg, replay leg — all through the real worker pool.
        case = generators.FleetCase(
            m=8, n=8, f=4, requests=8, max_arrivals=2, queue_capacity=8,
            max_batch=4, budget_ticks=4, workers=2, worker_kill_rate=0.3,
            worker_reload_rate=0.2, heartbeat_stall_rate=0.0, seed=4,
        )
        diags, crashed = run_check_once("serving.fleet", case)
        assert not crashed
        assert diags == []


class TestCrashContainment:
    def test_crashing_check_becomes_vf000(self, monkeypatch):
        def explode(case):
            raise RuntimeError("synthetic crash")

        monkeypatch.setitem(
            CHECKS,
            "gpusim.cache",
            dataclasses.replace(CHECKS["gpusim.cache"], run=explode),
        )
        diags, crashed = run_check_once(
            "gpusim.cache", CHECKS["gpusim.cache"].draw(np.random.default_rng(0))
        )
        assert crashed
        assert [d.rule_id for d in diags] == ["VF000"]
        assert diags[0].severity is Severity.ERROR
        assert "synthetic crash" in diags[0].message


class TestBugInjectionEndToEnd:
    """The issue's acceptance scenario: a deliberately broken solver must
    be caught by a campaign and leave behind a shrunk, replayable
    reproducer fixture."""

    @pytest.fixture()
    def broken_cg(self, monkeypatch):
        real = oracles.cg_solve_batched

        def buggy(A, b, **kwargs):
            res = real(A, b, **kwargs)
            return dataclasses.replace(res, x=res.x * np.float32(1.05))

        monkeypatch.setattr(oracles, "cg_solve_batched", buggy)
        return monkeypatch

    def test_campaign_catches_shrinks_and_persists(self, broken_cg, tmp_path):
        result = run_campaign(
            VerifyConfig(seed=0, budget=8, checks=("solver.cg",),
                         fixtures_dir=str(tmp_path))
        )
        assert result.failures, "a 5% solver error must not survive 8 cases"
        assert result.max_severity() is Severity.ERROR

        failure = result.failures[0]
        assert any(d.rule_id == "VF002" for d in failure.diagnostics)
        # The shrunk reproducer is no larger than the original draw.
        orig, shrunk = failure.case["params"], failure.shrunk["params"]
        for field in ("batch", "f", "log10_cond"):
            assert shrunk[field] <= orig[field]

        assert failure.fixture_path is not None
        with open(failure.fixture_path, encoding="utf-8") as fh:
            payload = json.load(fh)
        assert payload["schema"] == FIXTURE_SCHEMA
        assert payload["check"] == "solver.cg"

        # Replaying the fixture reproduces the bug while it exists...
        assert any(d.rule_id == "VF002" for d in replay_fixture(failure.fixture_path))

    def test_fixture_goes_green_once_fixed(self, tmp_path):
        real = oracles.cg_solve_batched
        pytest_mp = pytest.MonkeyPatch()
        try:
            pytest_mp.setattr(
                oracles,
                "cg_solve_batched",
                lambda A, b, **kw: dataclasses.replace(
                    real(A, b, **kw), x=real(A, b, **kw).x * np.float32(1.05)
                ),
            )
            result = run_campaign(
                VerifyConfig(seed=0, budget=8, checks=("solver.cg",),
                             fixtures_dir=str(tmp_path))
            )
            assert result.failures
            path = result.failures[0].fixture_path
        finally:
            pytest_mp.undo()
        # ...and passes once the injected bug is reverted.
        assert replay_fixture(path) == []

    def test_dropped_regularizer_campaign(self, monkeypatch, tmp_path):
        """The λ-dropping variant from the issue, end to end."""
        real = generators.hermitian_and_bias
        monkeypatch.setattr(
            generators, "hermitian_and_bias",
            lambda ratings, theta, lam: real(ratings, theta, 0.0),
        )
        result = run_campaign(
            VerifyConfig(seed=0, budget=6, checks=("solver.hermitian",),
                         fixtures_dir=str(tmp_path), shrink_attempts=16)
        )
        assert result.failures
        rules = {d.rule_id for f in result.failures for d in f.diagnostics}
        assert "VF001" in rules


class TestFixtureIO:
    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"schema": "wrong", "check": "solver.cg"}))
        with pytest.raises(ValueError, match="schema"):
            load_fixture(path)

    def test_load_rejects_unknown_check(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps(
            {"schema": FIXTURE_SCHEMA, "check": "gone.check",
             "case": {"case_type": "SPDCase", "params": {}}}
        ))
        with pytest.raises(ValueError, match="gone.check"):
            load_fixture(path)


class TestCLI:
    def test_list_checks(self, capsys):
        assert main(["verify", "--list-checks"]) == 0
        out = capsys.readouterr().out
        for name in CHECKS:
            assert name in out

    def test_small_clean_run_json(self, capsys):
        rc = main([
            "verify", "--seed", "1", "--budget", "3",
            "--checks", ",".join(FAST_CHECKS),
            "--no-fixtures", "--format", "json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == REPORT_SCHEMA
        assert payload["failed"] == 0

    @pytest.mark.parametrize("strict", [False, True])
    def test_exit_code_on_failure(self, capsys, monkeypatch, strict):
        from repro.analysis.diagnostics import Diagnostic

        def one_failure(case):
            return [Diagnostic(
                rule_id="VF104", severity=Severity.ERROR,
                subject="gpusim.coalescing", message="synthetic",
            )]

        monkeypatch.setitem(
            CHECKS,
            "gpusim.coalescing",
            dataclasses.replace(CHECKS["gpusim.coalescing"], run=one_failure),
        )
        argv = [
            "verify", "--budget", "2", "--checks", "gpusim.coalescing",
            "--no-shrink", "--no-fixtures",
        ]
        rc = main(argv + (["--strict"] if strict else []))
        capsys.readouterr()
        assert rc == 1
