"""Case generators: validity, determinism, shrinking, serialization."""

import dataclasses

import numpy as np
import pytest

from repro.verify.generators import (
    CacheCase,
    FleetCase,
    HermitianCase,
    KernelCase,
    OccupancyCase,
    PatternCase,
    SPDCase,
    TrajectoryCase,
    build_hermitian_system,
    build_spd_batch,
    case_from_dict,
    case_to_dict,
    draw_cache_case,
    draw_fleet_case,
    draw_hermitian_case,
    draw_kernel_case,
    draw_occupancy_case,
    draw_pattern_case,
    draw_spd_case,
    draw_trajectory_case,
    hermitian_condition_estimate,
    shrink_case,
    spd_condition_estimate,
)

ALL_DRAWS = [
    draw_spd_case,
    draw_hermitian_case,
    draw_trajectory_case,
    draw_kernel_case,
    draw_pattern_case,
    draw_occupancy_case,
    draw_cache_case,
    draw_fleet_case,
]


class TestValidation:
    def test_spd_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            SPDCase(batch=0, f=8, log10_cond=2.0, log10_scale=0.0, fs=0, seed=0)
        with pytest.raises(ValueError):
            SPDCase(batch=1, f=1, log10_cond=2.0, log10_scale=0.0, fs=0, seed=0)
        with pytest.raises(ValueError):
            SPDCase(batch=1, f=8, log10_cond=-1.0, log10_scale=0.0, fs=0, seed=0)
        with pytest.raises(ValueError):
            SPDCase(batch=1, f=8, log10_cond=2.0, log10_scale=13.0, fs=0, seed=0)

    def test_kernel_rejects_bad_launch(self):
        good = dict(
            device="maxwell", m=100, n=50, nnz=500, f=16, tile=8,
            threads_per_block=64, bin_size=32,
            read_scheme="noncoal-l1", precision="fp16",
        )
        KernelCase(**good)  # sanity: the base config is valid
        for bad in (
            {"threads_per_block": 48},  # not a warp multiple
            {"threads_per_block": 512},  # beyond the cap
            {"device": "not-a-gpu"},
            {"read_scheme": "mystery"},
            {"precision": "fp64"},
            {"f": 1},
            {"f": 200},  # beyond the occupancy-stable cap
        ):
            with pytest.raises(ValueError):
                KernelCase(**{**good, **bad})

    def test_pattern_rejects_bad_element_size(self):
        with pytest.raises(ValueError):
            PatternCase(num_elements=10, element_bytes=3, stride_elements=1)

    def test_fleet_rejects_bad_fields(self):
        good = dict(
            m=8, n=8, f=4, requests=10, max_arrivals=2, queue_capacity=8,
            max_batch=4, budget_ticks=4, workers=2, worker_kill_rate=0.1,
            worker_reload_rate=0.1, heartbeat_stall_rate=0.1, seed=0,
        )
        FleetCase(**good)  # sanity: the base config is valid
        for bad in (
            {"workers": 0},
            {"worker_kill_rate": 1.5},
            {"heartbeat_stall_rate": -0.1},
            {"max_batch": 0},
            {"requests": 0},
        ):
            with pytest.raises(ValueError):
                FleetCase(**{**good, **bad})


class TestBuilders:
    def test_spd_batch_deterministic_and_conditioned(self):
        case = SPDCase(batch=3, f=12, log10_cond=4.0, log10_scale=0.0, fs=0, seed=11)
        A1, b1, x1 = build_spd_batch(case)
        A2, b2, x2 = build_spd_batch(case)
        np.testing.assert_array_equal(A1, A2)
        np.testing.assert_array_equal(b1, b2)
        np.testing.assert_array_equal(x1, x2)
        assert A1.dtype == np.float32 and b1.dtype == np.float32
        assert A1.shape == (3, 12, 12) and b1.shape == (3, 12)
        np.testing.assert_allclose(A1, np.swapaxes(A1, 1, 2))  # symmetric
        assert spd_condition_estimate(case) == pytest.approx(1e4)
        measured = hermitian_condition_estimate(A1)
        assert 1e3 < measured < 1e5  # planted 1e4, give or take fp32 rounding

    def test_hermitian_system_deterministic(self):
        case = HermitianCase(
            m=20, n=15, nnz=80, f=6, lam=0.05, zipf=1.0,
            empty_rows=2, empty_cols=1, seed=5,
        )
        A1, b1 = build_hermitian_system(case)
        A2, b2 = build_hermitian_system(case)
        np.testing.assert_array_equal(A1, A2)
        np.testing.assert_array_equal(b1, b2)
        assert A1.shape == (22, 6, 6)  # m + empty_rows systems


class TestDraws:
    @pytest.mark.parametrize("draw", ALL_DRAWS, ids=lambda d: d.__name__)
    def test_reproducible_from_seed(self, draw):
        a = [draw(np.random.default_rng(42)) for _ in range(5)]
        b = [draw(np.random.default_rng(42)) for _ in range(5)]
        assert a == b

    @pytest.mark.parametrize("draw", ALL_DRAWS, ids=lambda d: d.__name__)
    def test_streams_diverge_across_seeds(self, draw):
        rng_a, rng_b = np.random.default_rng(1), np.random.default_rng(2)
        assert [draw(rng_a) for _ in range(5)] != [draw(rng_b) for _ in range(5)]

    def test_truncated_draw_sets_fs(self):
        rng = np.random.default_rng(0)
        cases = [draw_spd_case(rng, truncated=True) for _ in range(10)]
        assert all(1 <= c.fs <= 8 for c in cases)
        assert all(c.max_iters == c.fs for c in cases)


class TestShrinking:
    def test_shrinks_to_predicate_boundary(self):
        case = SPDCase(batch=6, f=64, log10_cond=5.0, log10_scale=3.0, fs=0, seed=9)
        shrunk = shrink_case(case, lambda c: c.f >= 10)
        assert shrunk.f == 10  # minimal f still satisfying the predicate
        assert shrunk.batch == 1  # unconstrained fields hit their minima
        assert shrunk.log10_cond == 0.0
        assert shrunk.log10_scale == 0.0

    def test_never_returns_passing_case(self):
        case = KernelCase(
            device="maxwell", m=5000, n=400, nnz=20_000, f=32, tile=8,
            threads_per_block=128, bin_size=32,
            read_scheme="coalesced", precision="fp32",
        )
        shrunk = shrink_case(case, lambda c: c.nnz > 1000 and c.f > 4)
        assert shrunk.nnz > 1000 and shrunk.f > 4
        assert shrunk.m <= case.m and shrunk.threads_per_block <= case.threads_per_block

    def test_fleet_workers_shrink_stops_at_one(self):
        # _SHRINK_MINIMA maps "workers" to 0 (the RuntimeCase floor),
        # but FleetCase validation rejects 0 — the shrinker must skip
        # the invalid candidate and settle at 1.
        case = FleetCase(
            m=8, n=8, f=4, requests=10, max_arrivals=2, queue_capacity=8,
            max_batch=4, budget_ticks=4, workers=3, worker_kill_rate=0.1,
            worker_reload_rate=0.0, heartbeat_stall_rate=0.0, seed=0,
        )
        shrunk = shrink_case(case, lambda c: True)
        assert shrunk.workers == 1
        assert shrunk.requests == 1
        assert shrunk.worker_kill_rate == 0.0

    def test_zero_attempts_is_identity(self):
        case = CacheCase(cache_bytes=4096, base_working_set_bytes=100, reuse_factor=3.0)
        assert shrink_case(case, lambda c: True, max_attempts=0) == case

    def test_respects_field_coupling(self):
        """Shrinking nnz below m would make HermitianCase invalid; the
        shrinker must skip those candidates, not crash."""
        case = HermitianCase(
            m=30, n=20, nnz=120, f=8, lam=0.1, zipf=0.5,
            empty_rows=3, empty_cols=2, seed=1,
        )
        shrunk = shrink_case(case, lambda c: c.f >= 4)
        assert shrunk.f == 4
        assert shrunk.nnz >= shrunk.m  # invariant preserved throughout


class TestSerialization:
    @pytest.mark.parametrize("draw", ALL_DRAWS, ids=lambda d: d.__name__)
    def test_round_trip(self, draw):
        case = draw(np.random.default_rng(7))
        payload = case_to_dict(case)
        assert isinstance(payload["case_type"], str)
        restored = case_from_dict(payload)
        assert restored == case
        assert type(restored) is type(case)

    def test_round_trip_survives_json(self):
        import json

        case = draw_trajectory_case(np.random.default_rng(3))
        restored = case_from_dict(json.loads(json.dumps(case_to_dict(case))))
        assert restored == case

    def test_unknown_case_type_rejected(self):
        with pytest.raises(ValueError):
            case_from_dict({"case_type": "BogusCase", "params": {}})

    def test_all_case_types_are_frozen(self):
        for draw in ALL_DRAWS:
            case = draw(np.random.default_rng(0))
            with pytest.raises(dataclasses.FrozenInstanceError):
                case.seed = 1  # type: ignore[misc]


def test_occupancy_case_requires_scaling():
    with pytest.raises(ValueError):
        OccupancyCase(
            device="maxwell", registers_per_thread=32,
            threads_per_block=64, shared_mem_per_block=0, sm_scale=1,
        )
