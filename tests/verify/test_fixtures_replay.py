"""Replay every persisted reproducer fixture against the current tree.

Fixtures under ``tests/fixtures/verify/`` are minimal failing cases that
past ``repro verify`` campaigns shrank and saved.  Once the underlying
bug is fixed the fixture must replay clean — and stay clean forever.
A non-empty diagnostic list here means a regression of a previously
fixed bug.
"""

import os

import pytest

from repro.verify import iter_fixture_paths, replay_fixture

FIXTURES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "fixtures",
    "verify",
)

_PATHS = iter_fixture_paths(FIXTURES_DIR)


@pytest.mark.parametrize(
    "path",
    _PATHS or [None],
    ids=[os.path.basename(p) for p in _PATHS] or ["no-fixtures"],
)
def test_fixture_replays_clean(path):
    if path is None:
        pytest.skip("no reproducer fixtures recorded yet")
    diags = replay_fixture(path)
    assert diags == [], "\n".join(
        f"{d.rule_id}: {d.message}" for d in diags
    )


def test_missing_directory_yields_empty_list(tmp_path):
    assert iter_fixture_paths(tmp_path / "does-not-exist") == []


def test_non_json_files_are_ignored(tmp_path):
    (tmp_path / "README.md").write_text("not a fixture\n")
    assert iter_fixture_paths(tmp_path) == []
