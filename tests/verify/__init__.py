"""Tests for the ``repro.verify`` fuzz harness itself."""
