"""Tests for the distributed CPU ALS baselines (Table V strategies)."""

import pytest

from repro.baselines.distributed_als import (
    DistributedALS,
    ReplicationStrategy,
    distributed_comm_bytes,
)
from repro.core import ALSConfig, ALSModel
from repro.data import get_dataset, load_surrogate

NETFLIX = get_dataset("netflix").paper
YAHOO = get_dataset("yahoomusic").paper


@pytest.fixture(scope="module")
def small():
    split, spec = load_surrogate("netflix", scale=0.08, seed=17)
    return split, spec


class TestCommModel:
    def test_single_node_is_free(self):
        for s in ReplicationStrategy:
            assert distributed_comm_bytes(s, NETFLIX, 1) == 0.0

    def test_full_replication_scales_with_nodes(self):
        b8 = distributed_comm_bytes(ReplicationStrategy.FULL, NETFLIX, 8)
        b16 = distributed_comm_bytes(ReplicationStrategy.FULL, NETFLIX, 16)
        assert b16 == pytest.approx(b8 * 15 / 7)

    def test_partial_cheaper_than_full(self):
        """The SparkALS improvement over PALS the paper cites."""
        full = distributed_comm_bytes(ReplicationStrategy.FULL, NETFLIX, 16)
        part = distributed_comm_bytes(
            ReplicationStrategy.PARTIAL, NETFLIX, 16, coverage=0.6
        )
        assert part < full

    def test_partial_degrades_with_coverage(self):
        lo = distributed_comm_bytes(ReplicationStrategy.PARTIAL, NETFLIX, 16, coverage=0.2)
        hi = distributed_comm_bytes(ReplicationStrategy.PARTIAL, NETFLIX, 16, coverage=0.9)
        assert hi > 4 * lo

    def test_rotation_matches_full_bandwidth(self):
        """Rotation moves the same bytes as full replication — its win is
        never fetching on demand, not volume."""
        full = distributed_comm_bytes(ReplicationStrategy.FULL, NETFLIX, 8)
        rot = distributed_comm_bytes(ReplicationStrategy.ROTATE, NETFLIX, 8)
        assert rot == pytest.approx(full)

    def test_item_heavy_dataset_hurts(self):
        """YahooMusic's n=625K makes every strategy ~35x more expensive
        than Netflix's n=17.8K — the paper's communication-bottleneck
        argument, quantified."""
        net = distributed_comm_bytes(ReplicationStrategy.FULL, NETFLIX, 16)
        yah = distributed_comm_bytes(ReplicationStrategy.FULL, YAHOO, 16)
        assert yah / net > 20

    def test_validation(self):
        with pytest.raises(ValueError):
            distributed_comm_bytes(ReplicationStrategy.FULL, NETFLIX, 0)
        with pytest.raises(ValueError):
            distributed_comm_bytes(ReplicationStrategy.PARTIAL, NETFLIX, 4, coverage=1.5)


class TestDistributedALS:
    def test_numerics_match_single_machine_als(self, small):
        """Strategies change the clock, never the math."""
        split, spec = small
        dist = DistributedALS(ALSConfig(f=16, lam=spec.lam), num_nodes=8)
        c_dist = dist.fit(split.train, split.test, epochs=3)
        from repro.core import SolverKind

        local = ALSModel(
            ALSConfig(f=16, lam=spec.lam, solver=SolverKind.LU)
        ).fit(split.train, split.test, epochs=3)
        assert c_dist.final_rmse == pytest.approx(local.final_rmse, abs=0.01)

    def test_strategies_identical_numerics(self, small):
        split, spec = small
        finals = []
        for s in ReplicationStrategy:
            model = DistributedALS(
                ALSConfig(f=16, lam=spec.lam), strategy=s, num_nodes=8
            )
            finals.append(model.fit(split.train, split.test, epochs=2).final_rmse)
        assert max(finals) == pytest.approx(min(finals), abs=1e-6)

    def test_comm_fraction_grows_with_nodes(self, small):
        """More nodes shrink compute but not the replicated volume —
        the scaling wall of §I."""
        split, spec = small
        fracs = {}
        for nodes in (4, 32):
            model = DistributedALS(
                ALSConfig(f=100, lam=spec.lam),
                strategy=ReplicationStrategy.FULL,
                num_nodes=nodes,
                sim_shape=spec.paper,
            )
            model.fit(split.train, epochs=1)
            fracs[nodes] = model.comm_fraction()
        assert fracs[32] > fracs[4]

    def test_cumf_beats_distributed_als(self, small):
        """The paper's bottom line: one GPU outruns the CPU cluster."""
        split, spec = small
        dist = DistributedALS(
            ALSConfig(f=100, lam=spec.lam),
            strategy=ReplicationStrategy.PARTIAL,
            num_nodes=16,
            sim_shape=spec.paper,
        )
        c_dist = dist.fit(split.train, epochs=2)
        cumf = ALSModel(ALSConfig(f=100, lam=spec.lam), sim_shape=spec.paper).fit(
            split.train, epochs=2
        )
        assert cumf.total_seconds < c_dist.total_seconds

    def test_unfitted_comm_fraction(self):
        with pytest.raises(RuntimeError):
            DistributedALS().comm_fraction()

    def test_validation(self, small):
        split, _ = small
        with pytest.raises(ValueError):
            DistributedALS(num_nodes=0)
        with pytest.raises(ValueError):
            DistributedALS(threads_per_node=0)
        with pytest.raises(ValueError):
            DistributedALS().fit(split.train, epochs=0)
