"""Tests for the baseline systems and their cost calibration."""

import numpy as np
import pytest

from repro.baselines import (
    BIDMachALS,
    IMPLICIT_LIB,
    LibMF,
    LibMFConfig,
    Nomad,
    NomadConfig,
    QMF_LIB,
    gpu_als,
    hpc_als,
    implicit_epoch_seconds,
)
from repro.core import ALSConfig, ALSModel
from repro.data import WorkloadShape, get_dataset, load_surrogate
from repro.gpusim import KEPLER_K40, MAXWELL_TITANX

NETFLIX = get_dataset("netflix").paper
YAHOO = get_dataset("yahoomusic").paper


@pytest.fixture(scope="module")
def small():
    split, spec = load_surrogate("netflix", scale=0.08, seed=7)
    return split, spec


class TestLibMF:
    def test_epoch_seconds_matches_table4_scale(self):
        """LIBMF converges Netflix in 23 s (~10 epochs): per-epoch ~2-3 s."""
        model = LibMF(LibMFConfig(f=100))
        t = model.epoch_seconds(NETFLIX)
        assert 1.0 < t < 4.0

    def test_converges(self, small):
        """Mean-aware init + blocked SGD reach a good plateau quickly."""
        split, _ = small
        curve = LibMF(LibMFConfig(f=16, lam=0.05)).fit(split.train, split.test, epochs=10)
        assert curve.best_rmse < 1.0
        assert curve.final_rmse < 1.05 * curve.best_rmse  # no divergence

    def test_slower_than_cumf(self, small):
        """Paper Table IV: cuMF_ALS@M beats LIBMF by ~3.5x on Netflix."""
        split, spec = small
        libmf_epoch = LibMF(LibMFConfig(f=100)).epoch_seconds(spec.paper)
        cumf = ALSModel(ALSConfig(f=100), sim_shape=spec.paper).fit(
            split.train, epochs=1
        )
        assert libmf_epoch > cumf.total_seconds  # per-epoch already slower

    def test_validation(self):
        with pytest.raises(ValueError):
            LibMFConfig(threads=0)
        with pytest.raises(ValueError):
            LibMFConfig(lr=-1.0)


class TestNomad:
    def test_netflix_epoch_fast(self):
        t = Nomad(NomadConfig(f=100), num_nodes=32).epoch_seconds(NETFLIX)
        assert t < 1.5  # 32 nodes: ~10 epochs to the 9.6 s of Table IV

    def test_yahoomusic_comm_penalty(self):
        """Paper Table IV: NOMAD is ~11x slower on YahooMusic than Netflix
        despite only 2.5x the ratings — token latency over n=625K items."""
        nomad = Nomad(NomadConfig(f=100), num_nodes=32)
        t_net = nomad.epoch_seconds(NETFLIX)
        t_yah = nomad.epoch_seconds(YAHOO)
        assert t_yah / t_net > 3.0

    def test_converges(self, small):
        split, _ = small
        curve = Nomad(NomadConfig(f=16, lam=0.05), num_nodes=8).fit(
            split.train, split.test, epochs=10
        )
        assert curve.best_rmse < 1.0
        assert curve.final_rmse < 1.05 * curve.best_rmse

    def test_validation(self):
        with pytest.raises(ValueError):
            NomadConfig(threads_per_node=0)


class TestGpuAlsFactories:
    def test_gpu_als_is_coalesced_lu(self):
        from repro.core import Precision, ReadScheme, SolverKind

        model = gpu_als(f=100)
        assert model.config.read_scheme is ReadScheme.COALESCED
        assert model.config.solver is SolverKind.LU
        assert model.config.precision is Precision.FP32

    def test_cumf_2to4x_faster_than_gpu_als(self, small):
        """The paper's headline Figure 1 claim."""
        split, spec = small
        base = gpu_als(f=100, sim_shape=spec.paper).fit(split.train, epochs=2)
        ours = ALSModel(ALSConfig(f=100), sim_shape=spec.paper).fit(
            split.train, epochs=2
        )
        speedup = base.total_seconds / ours.total_seconds
        assert 2.0 < speedup < 5.0

    def test_hpc_als_on_kepler(self):
        model = hpc_als()
        assert model.device is KEPLER_K40

    def test_cumf_2x_faster_than_hpc_als_per_iteration(self, small):
        """Paper §V-C: 'CUMFALS runs twice as fast as HPC-ALS on the same
        hardware (Kepler K40)'."""
        split, spec = small
        hpc = hpc_als(f=100, sim_shape=spec.paper).fit(split.train, epochs=1)
        ours = ALSModel(ALSConfig(f=100), device=KEPLER_K40, sim_shape=spec.paper).fit(
            split.train, epochs=1
        )
        ratio = hpc.total_seconds / ours.total_seconds
        assert 1.4 < ratio < 4.0


class TestBIDMach:
    def test_epoch_seconds_at_40gflops(self):
        model = BIDMachALS(f=100)
        flops = 2.0 * NETFLIX.nnz * 100**2 + (NETFLIX.m + NETFLIX.n) * 100**3 / 3
        assert model.epoch_seconds(NETFLIX) == pytest.approx(flops / 40e9)

    def test_much_slower_than_cumf(self, small):
        split, spec = small
        bid = BIDMachALS(f=100, sim_shape=spec.paper)
        cumf = ALSModel(ALSConfig(f=100), sim_shape=spec.paper).fit(
            split.train, epochs=1
        )
        assert bid.epoch_seconds(spec.paper) > 10 * cumf.total_seconds

    def test_converges_worse_than_weighted_als(self, small):
        """Unweighted λI underfits hot users: plateau above ALS-WR's RMSE
        — the mechanism behind 'BIDMach does not converge' in the paper."""
        split, _ = small
        bid = BIDMachALS(f=16, lam=0.05).fit(split.train, split.test, epochs=6)
        ours = ALSModel(ALSConfig(f=16, lam=0.05)).fit(
            split.train, split.test, epochs=6
        )
        assert bid.best_rmse > ours.best_rmse

    def test_validation(self):
        with pytest.raises(ValueError):
            BIDMachALS(f=0)
        with pytest.raises(ValueError):
            BIDMachALS(f=8).fit(None, epochs=0)


class TestImplicitLibraries:
    def test_section5f_ordering(self):
        """cuMF (2.2 s) ≪ implicit (90 s) < QMF (360 s) per iteration."""
        t_impl = implicit_epoch_seconds(IMPLICIT_LIB, NETFLIX)
        t_qmf = implicit_epoch_seconds(QMF_LIB, NETFLIX)
        assert 30 < t_impl < 200
        assert t_qmf > 2.5 * t_impl

    def test_validation(self):
        from repro.baselines import CpuImplicitLibrary

        with pytest.raises(ValueError):
            CpuImplicitLibrary(name="x", core_efficiency=0.0, effective_cores=1)
        with pytest.raises(ValueError):
            CpuImplicitLibrary(name="x", core_efficiency=0.5, effective_cores=0)
