"""Figure 8 — ALS vs SGD on one and four GPUs.

Reproduces the paper's §V-E comparison: SGD's epochs are cheaper but it
needs more of them; with four GPUs ALS pulls ahead on the dense
Hugewiki-style workload.
"""

from conftest import run_once

from repro.harness import ascii_chart, fig8_als_vs_sgd, print_chart, print_series, print_table


def _report(res):
    t2t = res.time_to_target()
    print_table(
        f"Figure 8 ({res.dataset}) - seconds to RMSE {res.target_rmse:.4f}",
        ["system", "time-to-target (s)", "best RMSE", "epochs"],
        [
            (
                name,
                "n/a" if t2t[name] is None else round(t2t[name], 2),
                curve.best_rmse,
                len(curve.points),
            )
            for name, curve in res.curves.items()
        ],
    )
    for name, curve in res.curves.items():
        print_series(name, curve.seconds_array(), curve.rmse_array())
    print_chart(
        ascii_chart(
            {
                name: (curve.seconds_array(), curve.rmse_array())
                for name, curve in res.curves.items()
            },
            log_x=True,
        )
    )
    return t2t


def test_fig8_netflix(benchmark):
    res = run_once(benchmark, fig8_als_vs_sgd, "netflix", scale=0.2)
    t2t = _report(res)
    als, sgd = res.curves["als@1"], res.curves["sgd@1"]
    # Paper: 'ALS runs slower in each iteration, but requires fewer
    # iterations to converge'.
    als_epoch = als.total_seconds / len(als.points)
    sgd_epoch = sgd.total_seconds / len(sgd.points)
    assert sgd_epoch < als_epoch
    assert len(sgd.points) > len(als.points)
    # On Netflix at one GPU the two are comparable (within ~4x either way).
    assert t2t["als@1"] is not None and t2t["sgd@1"] is not None
    ratio = t2t["als@1"] / t2t["sgd@1"]
    assert 0.25 < ratio < 4.0


def test_fig8_hugewiki_multi_gpu(benchmark):
    res = run_once(benchmark, fig8_als_vs_sgd, "hugewiki", scale=0.12)
    t2t = _report(res)
    # Paper: 'with four GPUs, ALS converges faster than SGD on Hugewiki'.
    assert t2t["als@4"] is not None
    assert t2t["sgd@4"] is None or t2t["als@4"] < t2t["sgd@4"]
    # And 4 GPUs beat 1 GPU for ALS.
    assert t2t["als@4"] < t2t["als@1"]
