"""Table II (datasets/parameters) and Table III (server configurations).

Prints the registry entries exactly as the paper tabulates them and
checks the surrogate generators honour each dataset's statistical
profile (scale, density skew, rating range).
"""

from conftest import run_once

from repro.data import DATASETS, generate_ratings
from repro.gpusim import DEVICE_PRESETS
from repro.harness import print_table


def test_table2_datasets(benchmark):
    def build():
        # Generate a shrunken surrogate of each dataset to validate range.
        out = {}
        for name, spec in DATASETS.items():
            cfg = spec.surrogate
            import dataclasses

            small = dataclasses.replace(
                cfg, m=max(64, cfg.m // 8), n=max(32, cfg.n // 8),
                nnz=max(512, cfg.nnz // 16),
            )
            out[name] = (spec, generate_ratings(small))
        return out

    built = run_once(benchmark, build)
    print_table(
        "Table II - benchmark datasets and parameters",
        ["dataset", "m", "n", "Nz", "f", "lambda", "target RMSE"],
        [
            (s.name, s.paper.m, s.paper.n, f"{s.paper.nnz:.3g}", s.paper.f, s.lam, s.target_rmse)
            for s, _ in built.values()
        ],
    )
    print_table(
        "Table III - GPU configurations",
        ["device", "generation", "SMs", "TFLOPS fp32", "GB/s", "DRAM GB"],
        [
            (
                d.name,
                d.generation,
                d.num_sms,
                round(d.peak_flops_fp32 / 1e12, 1),
                round(d.dram_bandwidth / 1e9),
                d.dram_capacity // 1024**3,
            )
            for d in dict.fromkeys(DEVICE_PRESETS.values())
        ],
    )
    for name, (spec, ratings) in built.items():
        assert ratings.row_val.min() >= spec.rating_min
        assert ratings.row_val.max() <= spec.rating_max
        # Zipf-skewed item popularity must survive the down-scaling.
        counts = ratings.col_counts()
        assert counts.max() > 3 * max(counts.mean(), 1)
