"""Figure 7b — CG solver memory bandwidth vs cudaMemcpy.

Reproduces the finding that the batched CG matvec saturates DRAM better
than a device-to-device memcpy on all three GPU generations.
"""

from conftest import run_once

from repro.harness import fig7b_bandwidth, print_table


def test_fig7b_bandwidth(benchmark):
    rows = run_once(benchmark, fig7b_bandwidth)
    print_table(
        "Figure 7b - CG solver DRAM bandwidth vs cudaMemcpy (Netflix, f=100)",
        ["device", "CG GB/s", "memcpy GB/s", "utilization"],
        [
            (r["device"], r["cg_gbps"], r["memcpy_gbps"], r["bw_utilization"])
            for r in rows
        ],
    )
    for r in rows:
        # The paper's claim: CG achieves higher bandwidth than cudaMemcpy.
        assert r["cg_gbps"] > r["memcpy_gbps"]
        assert r["bw_utilization"] <= 1.0
    # Pascal's HBM2 dominates in absolute bandwidth.
    by_dev = {r["device"]: r for r in rows}
    assert by_dev["Pascal"]["cg_gbps"] > by_dev["Maxwell"]["cg_gbps"] > by_dev["Kepler"]["cg_gbps"]
