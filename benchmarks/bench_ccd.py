"""CCD++ comparison (paper §VI-B, Nisa et al. [20]).

The related-work claim reproduced here: GPU CCD++ is faster per epoch
than the unoptimized GPU-ALS [31], but cuMF_ALS's memory optimization +
approximate solver reverses the verdict; and per epoch CCD++ makes less
progress than ALS.
"""

from conftest import run_once

from repro.core import (
    ALSConfig,
    CCDConfig,
    CCDModel,
    Precision,
    ReadScheme,
    SolverKind,
    ccd_epoch_seconds,
    cg_iteration_spec,
    hermitian_spec,
    lu_solver_seconds,
)
from repro.data import get_dataset, load_surrogate
from repro.gpusim import MAXWELL_TITANX, time_kernel
from repro.harness import print_table

NETFLIX = get_dataset("netflix").paper


def _als_epoch_seconds(scheme, solver, precision):
    cfg = ALSConfig(f=100, read_scheme=scheme, solver=solver, precision=precision)
    herm = (
        time_kernel(MAXWELL_TITANX, hermitian_spec(MAXWELL_TITANX, NETFLIX, cfg)).seconds
        + time_kernel(
            MAXWELL_TITANX, hermitian_spec(MAXWELL_TITANX, NETFLIX.transpose(), cfg)
        ).seconds
    )
    if solver is SolverKind.LU:
        solve = lu_solver_seconds(MAXWELL_TITANX, NETFLIX.m, 100) + lu_solver_seconds(
            MAXWELL_TITANX, NETFLIX.n, 100
        )
    else:
        solve = 6 * (
            time_kernel(
                MAXWELL_TITANX, cg_iteration_spec(MAXWELL_TITANX, NETFLIX.m, 100, precision)
            ).seconds
            + time_kernel(
                MAXWELL_TITANX, cg_iteration_spec(MAXWELL_TITANX, NETFLIX.n, 100, precision)
            ).seconds
        )
    return herm + solve


def test_ccd_epoch_cost_ordering(benchmark):
    """[20]: GPU CCD++ beats GPU-ALS per epoch; cuMF_ALS beats both."""

    def measure():
        return {
            "GPU-ALS (coal+LU)": _als_epoch_seconds(
                ReadScheme.COALESCED, SolverKind.LU, Precision.FP32
            ),
            "CCD++": ccd_epoch_seconds(MAXWELL_TITANX, NETFLIX),
            "cuMF_ALS": _als_epoch_seconds(
                ReadScheme.NONCOAL_L1, SolverKind.CG, Precision.FP16
            ),
        }

    r = run_once(benchmark, measure)
    print_table(
        "CCD++ vs ALS per-epoch seconds (Netflix, Maxwell, f=100)",
        ["system", "seconds/epoch"],
        sorted(r.items(), key=lambda kv: kv[1]),
    )
    assert r["CCD++"] < r["GPU-ALS (coal+LU)"]
    assert r["cuMF_ALS"] < r["CCD++"] * 2.5  # cuMF_ALS is competitive/better


def test_ccd_less_progress_per_epoch(benchmark):
    """Paper: 'CCD++ ... makes less progress per iteration than ALS'."""

    def race():
        from repro.core import ALSModel

        split, spec = load_surrogate("netflix", scale=0.12, seed=3)
        ccd = CCDModel(CCDConfig(f=24, lam=spec.lam)).fit(
            split.train, split.test, epochs=3
        )
        als = ALSModel(ALSConfig(f=24, lam=spec.lam)).fit(
            split.train, split.test, epochs=3
        )
        return ccd.final_rmse, als.final_rmse

    ccd_rmse, als_rmse = run_once(benchmark, race)
    print_table(
        "Progress after 3 epochs (Netflix surrogate, f=24)",
        ["system", "test RMSE"],
        [("CCD++", ccd_rmse), ("cuMF_ALS", als_rmse)],
    )
    assert als_rmse < ccd_rmse
