"""Runtime-layer perf regression bench (ISSUE 3 acceptance criteria).

Runs the same harness as ``repro bench`` on the quick (CI-sized)
Netflix-shape surrogate, prints the legacy-vs-optimized table, and
asserts the PR's two hard numbers: >= 3x end-to-end epoch speedup and
zero steady-state allocations out of the workspace arena.  When the
committed ``benchmarks/baseline.json`` is present, the measured speedups
are additionally gated against it with its noise tolerance.
"""

import json
import pathlib

from conftest import run_once

from repro.harness import print_table
from repro.runtime.bench import QUICK_BENCH, compare_against, run_bench

BASELINE = pathlib.Path(__file__).resolve().parent / "baseline.json"


def test_runtime_speedup_and_steady_state(benchmark):
    """Tentpole gate: optimized epoch >= 3x legacy, arena allocates nothing."""
    result = run_once(benchmark, run_bench, QUICK_BENCH)

    sections = result["sections"]
    print_table(
        f"runtime bench (quick surrogate, plan={result['plan']})",
        ["section", "legacy ms", "optimized ms", "speedup"],
        [
            (
                name,
                f"{sec['legacy_seconds'] * 1e3:.1f}",
                f"{sec['optimized_seconds'] * 1e3:.1f}",
                f"{sec['speedup']:.2f}x",
            )
            for name, sec in sections.items()
        ],
    )

    assert result["numerics"]["equivalent"]
    assert result["arena"]["steady_state_allocations"] == 0
    assert sections["epoch"]["speedup"] >= 3.0

    if BASELINE.exists():
        ok, messages = compare_against(result, json.loads(BASELINE.read_text()))
        assert ok, "\n".join(messages)
