"""Distributed CPU ALS vs cuMF_ALS (paper §I / Table V).

Quantifies the introduction's argument: adding cluster nodes to ALS
stops paying once communication and framework overhead dominate, while
one GPU (let alone four) runs past the whole cluster.
"""

from conftest import run_once

from repro.baselines import DistributedALS, ReplicationStrategy
from repro.core import ALSConfig, ALSModel
from repro.data import get_dataset
from repro.gpusim import MAXWELL_TITANX
from repro.harness import print_table

NETFLIX = get_dataset("netflix").paper


def test_distributed_strategies_vs_gpu(benchmark):
    def measure():
        rows = []
        for strategy in ReplicationStrategy:
            for nodes in (4, 16, 64):
                model = DistributedALS(
                    ALSConfig(f=100), strategy=strategy, num_nodes=nodes
                )
                cost = model.half_step_cost(NETFLIX)
                rows.append(
                    (strategy.value, nodes, 2 * cost.total, 2 * cost.comm)
                )
        return rows

    rows = run_once(benchmark, measure)
    from repro.core import Precision, cg_iteration_spec, hermitian_spec
    from repro.gpusim import time_kernel

    gpu_epoch = (
        time_kernel(
            MAXWELL_TITANX, hermitian_spec(MAXWELL_TITANX, NETFLIX, ALSConfig(f=100))
        ).seconds
        + time_kernel(
            MAXWELL_TITANX,
            hermitian_spec(MAXWELL_TITANX, NETFLIX.transpose(), ALSConfig(f=100)),
        ).seconds
        + 6
        * (
            time_kernel(
                MAXWELL_TITANX,
                cg_iteration_spec(MAXWELL_TITANX, NETFLIX.m, 100, Precision.FP16),
            ).seconds
            + time_kernel(
                MAXWELL_TITANX,
                cg_iteration_spec(MAXWELL_TITANX, NETFLIX.n, 100, Precision.FP16),
            ).seconds
        )
    )
    print_table(
        "Distributed CPU ALS vs one Maxwell GPU — epoch seconds (Netflix, f=100)",
        ["strategy", "nodes", "epoch (s)", "comm (s)"],
        rows + [("cuMF_ALS (1 GPU)", 1, gpu_epoch, 0.0)],
    )
    # The paper's §I claim, scoped honestly: the single GPU beats every
    # framework-based cluster (Spark/Giraph) at any size, and bare-MPI
    # full replication up to 16 nodes; only an idealized 64-node MPI
    # cluster gets close — and NOMAD@32 vs cuMF@M in Table IV shows the
    # same near-tie on real hardware.
    for strategy, nodes, total, _ in rows:
        if strategy != "full" or nodes <= 16:
            assert gpu_epoch < total, (strategy, nodes)
    # And the communication share grows with node count for replication.
    full = {n: (t, c) for s, n, t, c in rows if s == "full"}
    assert full[64][1] / full[64][0] > full[4][1] / full[4][0]


def test_scaling_wall(benchmark):
    """Full replication: past some node count, epochs stop improving."""

    def measure():
        out = {}
        for nodes in (1, 4, 16, 64, 256):
            model = DistributedALS(
                ALSConfig(f=100),
                strategy=ReplicationStrategy.FULL,
                num_nodes=nodes,
            )
            out[nodes] = 2 * model.half_step_cost(NETFLIX).total
        return out

    t = run_once(benchmark, measure)
    print_table(
        "Scaling wall - full-replication ALS epoch seconds vs node count",
        ["nodes", "epoch (s)", "speedup vs 1"],
        [(n, v, round(t[1] / v, 2)) for n, v in t.items()],
    )
    # Speedup must saturate: 4x the nodes (64 -> 256) returns < 3x.
    assert t[64] / t[256] < 3.0
    assert t[1] / t[64] > 5.0  # but scaling does help initially
