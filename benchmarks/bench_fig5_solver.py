"""Figure 5 — solver time of 10 ALS iterations on Netflix, Maxwell.

Reproduces the LU-FP32 / CG-FP32 / CG-FP16 comparison (f=100, f_s=6)
with the get_hermitian reference bar and the solve-L1 == solve-noL1
observation.
"""

import pytest
from conftest import run_once

from repro.harness import fig5_solver, print_table


@pytest.fixture(scope="module")
def result():
    return fig5_solver()


def test_fig5_table(benchmark, result):
    r = run_once(benchmark, fig5_solver)
    print_table(
        "Figure 5 - solver seconds over 10 ALS iterations (Netflix, Maxwell, f=100, fs=6)",
        ["component", "seconds", "vs LU-FP32"],
        [
            (k, v, round(v / r["LU-FP32"], 3))
            for k, v in r.items()
        ],
    )
    assert r["LU-FP32"] > 0


def test_fig5_observation3_lu_dominates(benchmark, result):
    """Paper: 'the time taken by the LU solver is almost twice as much
    as that by get_hermitian'."""
    r = run_once(benchmark, lambda: result)
    ratio = r["LU-FP32"] / r["get_hermitian"]
    assert 1.5 < ratio < 3.0


def test_fig5_cg_fp32_quarter_of_lu(benchmark, result):
    """Paper: 'CG-FP32 is 1/4 of the LU-FP32 time'."""
    r = run_once(benchmark, lambda: result)
    ratio = r["CG-FP32"] / r["LU-FP32"]
    assert 0.12 < ratio < 0.40


def test_fig5_fp16_halves_cg(benchmark, result):
    """Paper: 'CG-FP16 takes 1/2 of the time compared with CG-FP32'."""
    r = run_once(benchmark, lambda: result)
    ratio = r["CG-FP16"] / r["CG-FP32"]
    assert 0.4 < ratio < 0.65


def test_fig5_total_speedup_to_one_eighth(benchmark, result):
    """Paper: 'CG-FP16 can reduce the run-time to 1/8 compared with
    LU-FP32'."""
    r = run_once(benchmark, lambda: result)
    ratio = r["LU-FP32"] / r["CG-FP16"]
    assert 5.0 < ratio < 14.0


def test_fig5_l1_does_not_help_solver(benchmark, result):
    """Paper: 'solve-L1 takes the same time as solve-noL1'."""
    r = run_once(benchmark, lambda: result)
    assert r["CG-FP32-L1"] == pytest.approx(r["CG-FP32"], rel=0.02)
    assert r["CG-FP16-L1"] == pytest.approx(r["CG-FP16"], rel=0.02)
