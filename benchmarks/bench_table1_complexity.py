"""Table I — compute/memory complexity per epoch, ALS vs SGD.

Reproduces the paper's complexity table with concrete counts at Netflix
scale and validates the orders: ALS kernels have C/M ~ O(f), the CG
solver and SGD have C/M ~ O(1).
"""

from conftest import run_once

from repro.data import get_dataset
from repro.harness import print_table, table1_complexity

NETFLIX = get_dataset("netflix").paper


def test_table1_complexity(benchmark):
    rows = run_once(benchmark, table1_complexity, NETFLIX)
    print_table(
        "Table I - compute (ops) and memory (elements) per epoch, Netflix f=100",
        ["algorithm", "step", "compute", "memory", "C/M", "paper order"],
        [
            (
                r["algorithm"],
                r["step"],
                f"{r['compute']:.2e}",
                f"{r['memory']:.2e}",
                r["c_over_m"],
                f"O({r['ratio_order']})" if r["ratio_order"] != 1 else "O(1)",
            )
            for r in rows
        ],
    )
    by_step = {r["step"]: r for r in rows}
    f = NETFLIX.f
    # ALS formation and exact solve are compute-intensive: C/M ~ f.
    assert by_step["get_hermitian"]["c_over_m"] > f / 4
    assert by_step["solve(LU)"]["c_over_m"] > f / 4
    # Truncated CG and SGD are memory-intensive: C/M ~ 1.
    assert by_step["solve(CG,fs)"]["c_over_m"] < 8
    assert by_step["epoch"]["c_over_m"] < 8
    # The paper's conclusion: ALS epoch compute exceeds SGD's by ~f/8.
    assert (
        by_step["get_hermitian"]["compute"] / by_step["epoch"]["compute"] > f / 16
    )
