"""§V-F — implicit matrix factorization per-iteration comparison.

Reproduces the cuMF_ALS (2.2 s) vs `implicit` (90 s) vs QMF (360 s)
per-iteration times at Netflix scale, and checks the implicit trainer
actually optimizes its confidence-weighted objective.
"""

from conftest import run_once

from repro.harness import implicit_comparison, print_table


def test_implicit_per_iteration(benchmark):
    r = run_once(benchmark, implicit_comparison)
    print_table(
        "Section V-F - implicit MF per-iteration seconds (Netflix scale)",
        ["system", "seconds/iteration", "paper"],
        [
            ("cuMF_ALS", r["cumf_als"], 2.2),
            ("implicit", r["implicit"], 90.0),
            ("QMF", r["qmf"], 360.0),
        ],
    )
    # Convergence under the implicit setting.
    assert r["loss_decreased"] == 1.0
    # Orderings and rough magnitudes of the paper.
    assert r["cumf_als"] < r["implicit"] / 10.0
    assert r["implicit"] < r["qmf"]
    assert 0.5 < r["cumf_als"] < 10.0  # paper: 2.2 s
    assert 20.0 < r["implicit"] < 250.0  # paper: 90 s
    assert 100.0 < r["qmf"] < 900.0  # paper: 360 s
