"""Figure 6 + Table IV — convergence races on all three datasets.

Races LIBMF, NOMAD, cuMF_ALS@Maxwell, cuMF_ALS@Pascal (and GPU-ALS@M)
to a shared acceptable-RMSE target.  Numerics run on scaled synthetic
surrogates; the time axis is simulated at paper-dataset scale, so the
seconds are directly comparable to Table IV.
"""

import pytest
from conftest import run_once

from repro.harness import ascii_chart, fig6_convergence, print_chart, print_series, print_table


def _report(res):
    t2t = res.time_to_target()
    print_table(
        f"Table IV ({res.dataset}) - seconds to acceptable RMSE {res.target_rmse:.4f}",
        ["system", "time-to-target (s)", "best RMSE", "epochs"],
        [
            (
                name,
                "n/a" if t2t[name] is None else round(t2t[name], 2),
                curve.best_rmse,
                len(curve.points),
            )
            for name, curve in res.curves.items()
        ],
    )
    print(f"Figure 6 ({res.dataset}) - RMSE vs training time series:")
    for name, curve in res.curves.items():
        print_series(name, curve.seconds_array(), curve.rmse_array())
    print_chart(
        ascii_chart(
            {
                name: (curve.seconds_array(), curve.rmse_array())
                for name, curve in res.curves.items()
            },
            log_x=True,
        )
    )
    return t2t


def test_fig6_netflix(benchmark):
    res = run_once(benchmark, fig6_convergence, "netflix", scale=0.2)
    t2t = _report(res)
    assert all(v is not None for v in t2t.values()), "every system converges"
    # Paper orderings on Netflix (Table IV): Pascal < Maxwell GPU times;
    # cuMF@P is the fastest system overall; LIBMF is the slowest.
    assert t2t["cuMFALS@P"] < t2t["cuMFALS@M"]
    assert t2t["cuMFALS@P"] == min(v for v in t2t.values())
    assert t2t["LIBMF"] == max(v for v in t2t.values())
    # cuMF@P / LIBMF speedup was 7x in the paper; accept 3x-15x.
    assert 3.0 < t2t["LIBMF"] / t2t["cuMFALS@P"] < 40.0
    # GPU-ALS is 2x-5x slower than cuMF on the same Maxwell.
    assert 1.8 < t2t["GPU-ALS@M"] / t2t["cuMFALS@M"] < 6.0


def test_fig6_yahoomusic(benchmark):
    res = run_once(benchmark, fig6_convergence, "yahoomusic", scale=0.2)
    t2t = _report(res)
    assert all(v is not None for v in t2t.values())
    assert t2t["cuMFALS@P"] < t2t["cuMFALS@M"]
    # Paper: NOMAD struggles on YahooMusic (109 s vs LIBMF's 38 s) due to
    # item-token communication; it must not beat cuMF here.
    assert t2t["NOMAD"] > t2t["cuMFALS@M"]


def test_fig6_hugewiki(benchmark):
    res = run_once(
        benchmark, fig6_convergence, "hugewiki", scale=0.15, sgd_epochs=30
    )
    t2t = _report(res)
    assert all(v is not None for v in t2t.values())
    # Paper Table IV: cuMF@P(4 GPUs) 68 s, NOMAD(64 nodes) 459 s,
    # LIBMF 3021 s — GPUs win by a wide margin.
    assert t2t["cuMFALS@P"] < t2t["NOMAD"]
    assert t2t["cuMFALS@P"] < t2t["LIBMF"] / 5.0
