"""Shared configuration for the reproduction benches.

Every bench uses the ``benchmark`` fixture (so ``--benchmark-only``
selects them) but wraps its experiment in a single round — these are
experiment harnesses whose output is the reproduced table/figure, not
microbenchmarks hunting nanoseconds.
"""

from __future__ import annotations

from repro.harness import set_sink

#: Collected table/figure text, re-emitted after the run — the benches'
#: printed reproductions ARE the deliverable, and pytest's capture would
#: otherwise swallow them on passing runs.
_TABLES: list[str] = []


def pytest_configure(config):
    set_sink(_TABLES)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.section("reproduced tables and figures")
    for text in _TABLES:
        terminalreporter.write_line(text)


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
