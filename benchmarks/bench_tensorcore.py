"""§VII future-work projection: cuMF_ALS with Volta Tensor Cores.

Beyond the paper's evaluation: projects the speedup the authors name as
future work, with the Amdahl ceiling from the memory-bound CG solve made
explicit.
"""

from conftest import run_once

from repro.core import project_tensor_core_epoch, tune_hermitian
from repro.data import get_dataset
from repro.gpusim import MAXWELL_TITANX, VOLTA_V100
from repro.harness import print_table

NETFLIX = get_dataset("netflix").paper


def test_tensor_core_projection(benchmark):
    p = run_once(benchmark, project_tensor_core_epoch, NETFLIX)
    print_table(
        "Tensor-core projection - ALS epoch on V100 (Netflix, f=100)",
        ["component", "FP32/plain (s)", "with HMMA (s)"],
        [
            ("get_hermitian", p.hermitian_fp32, p.hermitian_tensor),
            ("solve (CG-FP16)", p.solve_fp16, p.solve_fp16),
            ("epoch", p.epoch_without, p.epoch_with),
        ],
    )
    print(
        f"hermitian speedup {p.hermitian_speedup:.2f}x, "
        f"epoch speedup {p.epoch_speedup:.2f}x (Amdahl-capped by the solver)"
    )
    assert p.hermitian_speedup > 1.3
    assert 1.0 < p.epoch_speedup < p.hermitian_speedup


def test_autotuner_vs_paper_config(benchmark):
    """Simulator-driven sweep of (T, threads, BIN) vs the paper's choice."""
    r = run_once(benchmark, tune_hermitian, MAXWELL_TITANX, NETFLIX)
    paper = next(
        c
        for c in r.candidates
        if (c.tile, c.threads_per_block, c.bin_size) == (10, 64, 32)
    )
    rows = sorted(
        (c for c in r.candidates if c.launchable), key=lambda c: c.seconds
    )[:5]
    print_table(
        "Autotuner - top configurations (Netflix, Maxwell, f=100)",
        ["T", "threads", "BIN", "seconds", "blocks/SM", "regs/thread"],
        [
            (c.tile, c.threads_per_block, c.bin_size, c.seconds,
             c.blocks_per_sm, c.registers_per_thread)
            for c in rows
        ]
        + [("paper:10", 64, 32, paper.seconds, paper.blocks_per_sm,
            paper.registers_per_thread)],
    )
    assert paper.seconds < 1.5 * r.best.seconds
