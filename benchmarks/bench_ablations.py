"""Design-choice ablations beyond the paper's figures (DESIGN.md §4).

* BIN size sweep — shared-memory staging batch vs occupancy/load time;
* tile size T sweep — register pressure vs resident blocks;
* f_s sweep — solver truncation vs convergence quality (numeric!);
* FP16 scope — storage-only vs hypothetical FP16 arithmetic on Pascal.
"""

import pytest
from conftest import run_once

from repro.core import (
    ALSConfig,
    ALSModel,
    CGConfig,
    Precision,
    cg_iteration_spec,
    hermitian_resources,
    hermitian_spec,
)
from repro.data import get_dataset, load_surrogate
from repro.gpusim import MAXWELL_TITANX, PASCAL_P100, compute_occupancy, time_kernel
from repro.harness import print_table

NETFLIX = get_dataset("netflix").paper


def test_bin_size_sweep(benchmark):
    """Larger BIN amortizes staging but inflates shared memory; the
    default 32 sits at the knee."""

    def sweep():
        out = []
        for bin_size in (8, 16, 32, 64, 96, 128):
            cfg = ALSConfig(f=100, bin_size=bin_size)
            try:
                spec = hermitian_spec(MAXWELL_TITANX, NETFLIX, cfg)
                occ = compute_occupancy(MAXWELL_TITANX, spec.resources)
                t = time_kernel(MAXWELL_TITANX, spec)
                out.append(
                    (bin_size, occ.blocks_per_sm, t.phase_seconds("load"), t.seconds)
                )
            except ValueError:
                # BIN*f*4 bytes exceeds the 48 KB/block shared-memory cap:
                # the kernel cannot launch — a real CUDA constraint.
                out.append((bin_size, 0, float("nan"), float("nan")))
        return out

    rows = run_once(benchmark, sweep)
    print_table(
        "Ablation - BIN size (Netflix, Maxwell, f=100; 0 blocks = launch failure)",
        ["BIN", "blocks/SM", "load (s)", "total (s)"],
        rows,
    )
    by_bin = {r[0]: r for r in rows}
    # Shared memory only limits occupancy at extreme BIN.
    assert by_bin[32][1] == 6  # the paper's operating point
    assert by_bin[96][1] <= by_bin[32][1]
    assert by_bin[128][1] == 0  # 51.2 KB/block cannot launch


def test_tile_size_sweep(benchmark):
    """T=10 reproduces 168 regs/thread; larger tiles overflow registers."""

    def sweep():
        out = []
        for tile in (5, 10, 20):
            res = hermitian_resources(100, tile=tile)
            occ = compute_occupancy(MAXWELL_TITANX, res)
            out.append((tile, res.registers_per_thread, occ.blocks_per_sm))
        return out

    rows = run_once(benchmark, sweep)
    print_table(
        "Ablation - register tile T (f=100)",
        ["T", "regs/thread", "blocks/SM"],
        rows,
    )
    by_tile = {r[0]: r for r in rows}
    assert by_tile[10][1] == 168
    # Bigger tiles need more accumulator registers.
    assert by_tile[20][1] > by_tile[10][1]


def test_fs_sweep_convergence(benchmark):
    """The paper picked f_s=6 as the smallest truncation that does not
    hurt convergence; verify numerically on the surrogate."""

    def sweep():
        split, spec = load_surrogate("netflix", scale=0.12, seed=5)
        out = {}
        for fs in (1, 2, 6, 32):
            model = ALSModel(
                ALSConfig(f=32, lam=spec.lam, cg=CGConfig(max_iters=fs, tol=0.0))
            )
            curve = model.fit(split.train, split.test, epochs=6)
            out[fs] = curve.final_rmse
        return out

    rmse_by_fs = run_once(benchmark, sweep)
    print_table(
        "Ablation - CG truncation f_s vs final test RMSE (6 epochs)",
        ["f_s", "final RMSE"],
        sorted(rmse_by_fs.items()),
    )
    # fs=6 matches the exact solver closely; fs=1 is notably worse.
    assert rmse_by_fs[6] == pytest.approx(rmse_by_fs[32], abs=0.02)
    assert rmse_by_fs[1] > rmse_by_fs[6] - 1e-6


def test_fp16_arithmetic_on_pascal(benchmark):
    """Pascal's native FP16 arithmetic doubles the compute roofline, but
    the CG iteration is memory-bound so the gain comes from bytes."""

    def measure():
        fp32 = time_kernel(
            PASCAL_P100, cg_iteration_spec(PASCAL_P100, NETFLIX.m, 100, Precision.FP32)
        )
        fp16 = time_kernel(
            PASCAL_P100, cg_iteration_spec(PASCAL_P100, NETFLIX.m, 100, Precision.FP16)
        )
        return fp32, fp16

    fp32, fp16 = run_once(benchmark, measure)
    print_table(
        "Ablation - CG iteration on Pascal",
        ["precision", "seconds", "memory (s)", "compute (s)"],
        [
            ("FP32", fp32.seconds, fp32.memory_seconds, fp32.compute.seconds),
            ("FP16", fp16.seconds, fp16.memory_seconds, fp16.compute.seconds),
        ],
    )
    assert fp16.seconds < fp32.seconds
    assert fp16.compute.seconds == pytest.approx(fp32.compute.seconds / 2, rel=0.05)
    # Still memory-bound in both precisions.
    assert fp16.memory_seconds > fp16.compute.seconds
