"""Figure 7a — get_hermitian FLOPS and efficiency vs cuBLAS gemmBatched.

Reproduces the three-generation comparison: cuMF_ALS beats the vendor
batched GEMM everywhere and its FLOPS efficiency grows with newer
architectures (more registers per core).
"""

from conftest import run_once

from repro.harness import fig7a_flops, print_table


def test_fig7a_flops(benchmark):
    rows = run_once(benchmark, fig7a_flops)
    print_table(
        "Figure 7a - get_hermitian TFLOPS vs cuBLAS gemmBatched (Netflix, f=100)",
        ["device", "cuMF TFLOPS", "cuBLAS TFLOPS", "cuMF efficiency"],
        [
            (r["device"], r["cumf_tflops"], r["cublas_tflops"], r["cumf_efficiency"])
            for r in rows
        ],
    )
    by_dev = {r["device"]: r for r in rows}
    # cuMF achieves higher FLOPS than cuBLAS on all three generations.
    for r in rows:
        assert r["cumf_tflops"] > r["cublas_tflops"]
    # Efficiency grows with architecture generation (paper's register
    # trend argument).
    assert (
        by_dev["Kepler"]["cumf_efficiency"]
        < by_dev["Maxwell"]["cumf_efficiency"]
        < by_dev["Pascal"]["cumf_efficiency"]
    )
    # Absolute numbers in the paper's ballpark (Maxwell ~2-3 TFLOPS).
    assert 1.0 < by_dev["Maxwell"]["cumf_tflops"] < 4.0
