"""Figure 1 — the headline ablation: GPU-ALS + memory optimization +
approximate computing = cuMF_ALS, with 2x-4x total speedup.

Stacks the two optimization families one at a time and prints the
per-epoch seconds at Netflix scale on Maxwell.
"""

from conftest import run_once

from repro.harness import fig1_ablation, print_table


def test_fig1_ablation(benchmark):
    r = run_once(benchmark, fig1_ablation)
    base = r["gpu_als"]
    print_table(
        "Figure 1 - optimization ablation, per-epoch seconds (Netflix, Maxwell, f=100)",
        ["configuration", "seconds/epoch", "speedup vs GPU-ALS"],
        [(k, v, round(base / v, 2)) for k, v in r.items()],
    )
    # Each stage helps.
    assert r["+memopt"] < r["gpu_als"]
    assert r["+cg"] < r["+memopt"]
    assert r["+fp16 (cumf_als)"] < r["+cg"]
    # Combined speedup is the paper's 2x-4x.
    speedup = r["gpu_als"] / r["+fp16 (cumf_als)"]
    assert 2.0 < speedup < 4.5
