"""Figure 4 — coalesced vs non-coalesced staging reads in get_hermitian.

Reproduces the three-bar comparison (nonCoal-L1 / nonCoal-noL1 / coal)
with the load/compute/write phase split, for both update-X and update-Θ
at Netflix scale on the Maxwell Titan X the paper used.
"""

import pytest
from conftest import run_once

from repro.harness import fig4_coalescing, print_table


@pytest.fixture(scope="module")
def result():
    return fig4_coalescing()


def test_fig4_phase_table(benchmark, result):
    r = run_once(benchmark, fig4_coalescing)
    for side in ("update_x", "update_theta"):
        print_table(
            f"Figure 4 - {side} get_hermitian phases on Maxwell, Netflix f=100 (s)",
            ["scheme", "load", "compute", "write", "total"],
            [
                (scheme, p["load"], p["compute"], p["write"], p["total"])
                for scheme, p in r[side].items()
            ],
        )
    assert r  # table printed


def test_fig4_load_ordering(benchmark, result):
    """Paper: nonCoal-L1 fastest load; nonCoal-noL1 worse; coal worst."""
    r = run_once(benchmark, lambda: result)
    for side in ("update_x", "update_theta"):
        load = {k: v["load"] for k, v in r[side].items()}
        assert load["noncoal-l1"] < load["noncoal-nol1"] < load["coalesced"]
        # The win is substantial: >2x over coalesced.
        assert load["coalesced"] / load["noncoal-l1"] > 2.0


def test_fig4_compute_constant(benchmark, result):
    """Paper: 'compute time is almost constant in all settings'."""
    r = run_once(benchmark, lambda: result)
    for side in ("update_x", "update_theta"):
        comp = [v["compute"] for v in r[side].values()]
        assert max(comp) / min(comp) < 1.01


def test_fig4_write_asymmetry(benchmark, result):
    """update-X writes m*f^2, update-Θ writes n*f^2; m/n = 27 on Netflix."""
    r = run_once(benchmark, lambda: result)
    wx = r["update_x"]["noncoal-l1"]["write"]
    wt = r["update_theta"]["noncoal-l1"]["write"]
    assert 15 < wx / wt < 40
